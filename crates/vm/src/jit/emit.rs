//! The copy-and-patch template emitter: lowers a validated
//! [`BytecodeProgram`] to straight-line x86-64, one template per µop,
//! with operands patched to register-frame displacements and branch
//! targets fixed up to µop entry offsets.
//!
//! Fidelity contract: every template reproduces the bytecode
//! interpreter's observable behaviour bit-for-bit — lane values funnel
//! through the same masking/sign-extension rules, modeled cycles and
//! stat counters charge the same amounts in the same order, and the
//! watchdog/deadline/cancellation polls tick on the same dynamic
//! instruction counts. µop shapes without a template (atomics,
//! division, transcendentals, wide vectors) call back into
//! [`crate::jit::rt::jit_step`], which re-runs the whole µop through
//! the interpreter's own helpers; memory templates bounds-check
//! *before* charging (a pure register read, so the reorder is
//! unobservable) and take the same helper on the slow path so faulting
//! accesses charge and error exactly as interpreted.
//!
//! Register conventions inside generated code:
//!   r15 = &JitEnv      rbx = register-frame base
//!   rbp = value kept live across helper calls (poll clobbers the rest)
//!   rax/rcx/rdx/rsi/rdi/r11, xmm0-2 = scratch

use std::mem::offset_of;

use dpvk_ir::{BinOp, CmpPred, CtxField, ReduceOp, ResumeStatus, STy, Space, UnOp};

use crate::bytecode::{
    BDst, BSrc, BytecodeProgram, OpKind, OpMeta, SwitchVal, TermInfo, F_LOAD, F_RESTORE, F_SPILL,
    F_STORE,
};
use crate::context::ThreadContext;
use crate::jit::asm::{
    Alu, Asm, Cc, Fixup, Sh, Sse, R11, R15, RAX, RBP, RBX, RCX, RDI, RDX, RSI, XMM0, XMM1, XMM2,
};
use crate::jit::rt::{
    jit_f2i, jit_fail, jit_poll, jit_run_from, jit_step, JitEnv, FAIL_FLOAT_SWITCH, FAIL_WATCHDOG,
    STATUS_BARRIER, STATUS_BRANCH, STATUS_EXIT,
};

/// Widest vector µop lowered lane-by-lane inline; wider ops fall back
/// to the [`jit_step`] helper. Benchmarks run dynamic-width warps of at
/// most 4 lanes, so 8 covers everything hot with bounded code size.
pub(crate) const VEC_INLINE_MAX: u32 = 8;

/// Emission counters surfaced through the trace layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct JitEmitStats {
    /// Bytes of executable code emitted.
    pub code_bytes: u64,
    /// Static µops lowered to inline templates.
    pub template_uops: u64,
    /// Static µops routed to the interpreter-helper fallback.
    pub helper_uops: u64,
    /// The subset of `helper_uops` that fell back *solely* because the
    /// µop's vector width exceeds [`VEC_INLINE_MAX`] — the shape itself
    /// has an inline template. A specialization with a high wide share
    /// pays helper-call overhead per dynamic µop, which the adaptive
    /// width policy observes as inflated cycles at that width.
    pub wide_helper_uops: u64,
}

// JitEnv field displacements, resolved at compile time from the
// `repr(C)` layout.
const ENV_REGS: i32 = offset_of!(JitEnv, regs) as i32;
const ENV_EXECUTED: i32 = offset_of!(JitEnv, executed) as i32;
const ENV_MAX_INSTRUCTIONS: i32 = offset_of!(JitEnv, max_instructions) as i32;
const ENV_NEXT_POLL: i32 = offset_of!(JitEnv, next_poll) as i32;
const ENV_CYCLES: i32 = offset_of!(JitEnv, cycles) as i32;
const ENV_INSTRUCTIONS: i32 = offset_of!(JitEnv, instructions) as i32;
const ENV_FLOPS: i32 = offset_of!(JitEnv, flops) as i32;
const ENV_LOADS: i32 = offset_of!(JitEnv, loads) as i32;
const ENV_STORES: i32 = offset_of!(JitEnv, stores) as i32;
const ENV_RESTORE_LOADS: i32 = offset_of!(JitEnv, restore_loads) as i32;
const ENV_RESTORE_BYTES: i32 = offset_of!(JitEnv, restore_bytes) as i32;
const ENV_SPILL_STORES: i32 = offset_of!(JitEnv, spill_stores) as i32;
const ENV_SPILL_BYTES: i32 = offset_of!(JitEnv, spill_bytes) as i32;
const ENV_CYCLES_BODY: i32 = offset_of!(JitEnv, cycles_body) as i32;
const ENV_CYCLES_YIELD: i32 = offset_of!(JitEnv, cycles_yield) as i32;
const ENV_STATUS: i32 = offset_of!(JitEnv, status) as i32;
const ENV_ENTRY_ID_MASKED: i32 = offset_of!(JitEnv, entry_id_masked) as i32;
const ENV_CTXS: i32 = offset_of!(JitEnv, ctxs) as i32;
const ENV_GLOBAL_BASE: i32 = offset_of!(JitEnv, global_base) as i32;
const ENV_GLOBAL_LEN: i32 = offset_of!(JitEnv, global_len) as i32;
const ENV_SHARED_BASE: i32 = offset_of!(JitEnv, shared_base) as i32;
const ENV_SHARED_LEN: i32 = offset_of!(JitEnv, shared_len) as i32;
const ENV_LOCAL_BASE: i32 = offset_of!(JitEnv, local_base) as i32;
const ENV_LOCAL_LEN: i32 = offset_of!(JitEnv, local_len) as i32;
const ENV_PARAM_BASE: i32 = offset_of!(JitEnv, param_base) as i32;
const ENV_PARAM_LEN: i32 = offset_of!(JitEnv, param_len) as i32;
const ENV_CONST_BASE: i32 = offset_of!(JitEnv, const_base) as i32;
const ENV_CONST_LEN: i32 = offset_of!(JitEnv, const_len) as i32;

// ThreadContext field displacements (also `repr(C)`).
const CTX_SIZE: i32 = std::mem::size_of::<ThreadContext>() as i32;
const CTX_TID: i32 = offset_of!(ThreadContext, tid) as i32;
const CTX_NTID: i32 = offset_of!(ThreadContext, ntid) as i32;
const CTX_CTAID: i32 = offset_of!(ThreadContext, ctaid) as i32;
const CTX_NCTAID: i32 = offset_of!(ThreadContext, nctaid) as i32;
const CTX_LOCAL_BASE: i32 = offset_of!(ThreadContext, local_base) as i32;
const CTX_RESUME_POINT: i32 = offset_of!(ThreadContext, resume_point) as i32;

const SIGN_BIT: u64 = 0x8000_0000_0000_0000;

fn addr_poll() -> u64 {
    jit_poll as unsafe extern "C" fn(*mut JitEnv) -> u32 as usize as u64
}
fn addr_fail() -> u64 {
    jit_fail as unsafe extern "C" fn(*mut JitEnv, u32) -> u32 as usize as u64
}
fn addr_step() -> u64 {
    jit_step as unsafe extern "C" fn(*mut JitEnv, u32) -> u32 as usize as u64
}
fn addr_run_from() -> u64 {
    jit_run_from as unsafe extern "C" fn(*mut JitEnv, u32, u32) -> u32 as usize as u64
}
fn addr_f2i() -> u64 {
    jit_f2i as unsafe extern "C" fn(u64, u32, u32) -> u64 as usize as u64
}

/// Emit the whole program. Returns `None` when a structural limit rules
/// out code generation (frame too large for disp32 addressing).
pub(crate) fn emit_program(program: &BytecodeProgram) -> Option<(Vec<u8>, JitEmitStats)> {
    // Frame-slot and context displacements must fit disp32.
    let max_slot_disp = (program.slots as u64 + 64) * 8;
    let max_ctx_disp = program.warp_size as u64 * CTX_SIZE as u64 + 64;
    if max_slot_disp > i32::MAX as u64 || max_ctx_disp > i32::MAX as u64 {
        return None;
    }
    let mut e = Emitter {
        asm: Asm::new(),
        program,
        uop_start: Vec::with_capacity(program.code.len()),
        branch_fixups: Vec::new(),
        watchdog_fixups: Vec::new(),
        badfloat_fixups: Vec::new(),
        err_fixups: Vec::new(),
        ok_fixups: Vec::new(),
        stats: JitEmitStats::default(),
    };
    e.prologue();
    for idx in 0..program.code.len() {
        let start = e.asm.here();
        e.uop_start.push(start);
        e.emit_op(idx as u32);
    }
    e.finish();
    let mut stats = e.stats;
    let code = e.asm.into_code();
    stats.code_bytes = code.len() as u64;
    Some((code, stats))
}

/// Space-specific env fields: (base offset, len offset, writable).
fn space_offsets(space: Space) -> (i32, i32, bool) {
    match space {
        Space::Global => (ENV_GLOBAL_BASE, ENV_GLOBAL_LEN, true),
        Space::Shared => (ENV_SHARED_BASE, ENV_SHARED_LEN, true),
        Space::Local => (ENV_LOCAL_BASE, ENV_LOCAL_LEN, true),
        Space::Param => (ENV_PARAM_BASE, ENV_PARAM_LEN, false),
        Space::Const => (ENV_CONST_BASE, ENV_CONST_LEN, false),
    }
}

/// Whether an integer `Bin` op has an inline template.
fn int_bin_ok(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add
            | BinOp::Sub
            | BinOp::Mul
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Shl
            | BinOp::Shr
            | BinOp::Min
            | BinOp::Max
    )
}

/// Whether a float `Bin` op has an inline template. `Min`/`Max` stay on
/// the helper: Rust `f64::min` prefers the non-NaN operand, `minsd`
/// does not.
fn float_bin_ok(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

fn bin_ok(op: BinOp, sty: STy) -> bool {
    if sty.is_float() {
        float_bin_ok(op)
    } else {
        int_bin_ok(op)
    }
}

fn un_ok(op: UnOp, sty: STy) -> bool {
    if sty.is_float() {
        matches!(op, UnOp::Neg | UnOp::Abs | UnOp::Sqrt | UnOp::Rsqrt | UnOp::Rcp)
    } else {
        matches!(op, UnOp::Neg | UnOp::Not | UnOp::Abs)
    }
}

/// Whether a `Cvt` has an inline template. The one exclusion is
/// unsigned i64 → float, whose u64 rounding `cvtsi2sd` cannot express.
fn cvt_ok(to: STy, from: STy, signed: bool) -> bool {
    !(to.is_float() && from == STy::I64 && !signed)
}

struct Emitter<'p> {
    asm: Asm,
    program: &'p BytecodeProgram,
    /// Code offset of each µop's template (branch-fixup targets).
    uop_start: Vec<usize>,
    /// (fixup, target µop index) pairs patched once all µops are placed.
    branch_fixups: Vec<(Fixup, u32)>,
    watchdog_fixups: Vec<Fixup>,
    badfloat_fixups: Vec<Fixup>,
    err_fixups: Vec<Fixup>,
    ok_fixups: Vec<Fixup>,
    stats: JitEmitStats,
}

impl Emitter<'_> {
    /// Frame displacement of lane `i` of the register starting at `slot`.
    fn disp(&self, slot: u32, i: u32) -> i32 {
        ((slot + i) * 8) as i32
    }

    fn prologue(&mut self) {
        let a = &mut self.asm;
        a.push(RBP);
        a.push(RBX);
        a.push(R15);
        // Three pushes after the call's return address leave rsp
        // 16-aligned at every helper call site below.
        a.mov_rr(R15, RDI);
        a.load(RBX, R15, ENV_REGS);
    }

    /// The interpreter's `tick!`: bump `executed`, trip the watchdog,
    /// poll cancel/deadline when the counter crosses `next_poll`.
    fn tick(&mut self) {
        let a = &mut self.asm;
        a.load(RAX, R15, ENV_EXECUTED);
        a.alu_ri(Alu::Add, RAX, 1);
        a.store(R15, ENV_EXECUTED, RAX);
        a.alu_rm(Alu::Cmp, RAX, R15, ENV_MAX_INSTRUCTIONS);
        let wd = a.jcc_fwd(Cc::A);
        self.watchdog_fixups.push(wd);
        let a = &mut self.asm;
        a.alu_rm(Alu::Cmp, RAX, R15, ENV_NEXT_POLL);
        let skip = a.jcc_fwd(Cc::B);
        a.mov_rr(RDI, R15);
        a.mov_ri(R11, addr_poll());
        a.call_reg(R11);
        a.test_rr32(RAX, RAX);
        let err = a.jcc_fwd(Cc::Ne);
        self.err_fixups.push(err);
        self.asm.bind(skip);
    }

    /// The interpreter's `charge!`: tick, then accumulate the µop's
    /// modeled cycles, flops, and memory-traffic stats.
    fn charge(&mut self, meta: OpMeta) {
        self.tick();
        let a = &mut self.asm;
        if meta.cost != 0 {
            a.alu_mi(Alu::Add, R15, ENV_CYCLES, meta.cost as i32);
        }
        if meta.flops != 0 {
            a.alu_mi(Alu::Add, R15, ENV_FLOPS, meta.flops as i32);
        }
        if meta.flags & F_LOAD != 0 {
            a.alu_mi(Alu::Add, R15, ENV_LOADS, 1);
            if meta.flags & F_RESTORE != 0 {
                a.alu_mi(Alu::Add, R15, ENV_RESTORE_LOADS, 1);
                a.alu_mi(Alu::Add, R15, ENV_RESTORE_BYTES, meta.bytes as i32);
            }
        }
        if meta.flags & F_STORE != 0 {
            a.alu_mi(Alu::Add, R15, ENV_STORES, 1);
            if meta.flags & F_SPILL != 0 {
                a.alu_mi(Alu::Add, R15, ENV_SPILL_STORES, 1);
                a.alu_mi(Alu::Add, R15, ENV_SPILL_BYTES, meta.bytes as i32);
            }
        }
    }

    /// The interpreter's `retire_block!`: terminator cost joins the
    /// running block cycles *before* the tick so a watchdog trip
    /// discards them exactly as the interpreter does, then the block's
    /// cycles flush to the body/yield bucket.
    fn retire(&mut self, term: TermInfo) {
        if term.cost != 0 {
            self.asm.alu_mi(Alu::Add, R15, ENV_CYCLES, term.cost as i32);
        }
        self.tick();
        let a = &mut self.asm;
        if term.insts != 0 {
            a.alu_mi(Alu::Add, R15, ENV_INSTRUCTIONS, term.insts as i32);
        }
        a.load(RAX, R15, ENV_CYCLES);
        let bucket = if term.overhead { ENV_CYCLES_YIELD } else { ENV_CYCLES_BODY };
        a.alu_mr(Alu::Add, R15, bucket, RAX);
        a.store_imm(R15, ENV_CYCLES, 0);
    }

    /// Call `jit_step(env, idx)`: the full-µop interpreter fallback.
    fn call_step(&mut self, idx: u32) {
        let a = &mut self.asm;
        a.mov_rr(RDI, R15);
        a.mov_ri(RSI, idx as u64);
        a.mov_ri(R11, addr_step());
        a.call_reg(R11);
        a.test_rr32(RAX, RAX);
        let err = a.jcc_fwd(Cc::Ne);
        self.err_fixups.push(err);
    }

    /// Call `jit_run_from(env, idx, comp)`: resume a run µop at a
    /// component whose inline bounds check failed.
    fn call_run_from(&mut self, idx: u32, comp: u32) {
        let a = &mut self.asm;
        a.mov_rr(RDI, R15);
        a.mov_ri(RSI, idx as u64);
        a.mov_ri(RDX, comp as u64);
        a.mov_ri(R11, addr_run_from());
        a.call_reg(R11);
        a.test_rr32(RAX, RAX);
        let err = a.jcc_fwd(Cc::Ne);
        self.err_fixups.push(err);
    }

    /// Load operand lane `i` into GPR `r` (`lane()` of the interpreter:
    /// `Slot` broadcasts, `Lanes` indexes, `Prev` reads the fused
    /// predecessor from its register).
    fn load_src(&mut self, r: u8, src: BSrc, i: u32, prev: Option<u8>) {
        match src {
            BSrc::Imm(v) => self.asm.mov_ri(r, v),
            BSrc::Slot(s) => {
                let d = self.disp(s, 0);
                self.asm.load(r, RBX, d);
            }
            BSrc::Lanes(s) => {
                let d = self.disp(s, i);
                self.asm.load(r, RBX, d);
            }
            BSrc::Prev => {
                let p = prev.expect("Prev operand outside a fused µop");
                if p != r {
                    self.asm.mov_rr(r, p);
                }
            }
        }
    }

    /// Broadcast-fill all `w` declared slots of `dst` from `r`
    /// (`set_bcast`).
    fn store_bcast(&mut self, dst: BDst, r: u8) {
        for j in 0..dst.w {
            let d = self.disp(dst.off, j);
            self.asm.store(RBX, d, r);
        }
    }

    /// Sign-extend the `sty`-masked value in `r` to 64 bits (`sext`).
    fn sext_reg(&mut self, r: u8, sty: STy) {
        match sty.bits() {
            1 => {
                self.asm.alu_ri(Alu::And, r, 1);
                self.asm.neg(r);
            }
            8 => self.asm.movsx_rr(r, r, 1),
            16 => self.asm.movsx_rr(r, r, 2),
            32 => self.asm.movsx_rr(r, r, 4),
            _ => {}
        }
    }

    /// Re-establish the masked-storage invariant on `r` (`mask_to`).
    fn mask_reg(&mut self, r: u8, sty: STy) {
        match sty.bits() {
            1 => self.asm.alu_ri(Alu::And, r, 1),
            8 => self.asm.movzx_rr(r, r, 1),
            16 => self.asm.movzx_rr(r, r, 2),
            32 => self.asm.mov_rr32(r, r),
            _ => {}
        }
    }

    /// Load a float operand into `x` as f64 (`f_of`: f32 widens through
    /// `cvtss2sd`, which quietizes sNaN exactly like Rust `as f64`).
    fn load_f(&mut self, x: u8, src: BSrc, i: u32, sty: STy, tmp: u8, prev: Option<u8>) {
        self.load_src(tmp, src, i, prev);
        self.asm.movq_xr(x, tmp);
        if sty == STy::F32 {
            self.asm.cvtss2sd(x, x);
        }
    }

    /// Encode the f64 in `x` back to `sty` bits in GPR `r` (`f_enc`).
    fn store_f(&mut self, r: u8, x: u8, sty: STy) {
        if sty == STy::F32 {
            self.asm.cvtsd2ss(x, x);
            self.asm.movd_rx(r, x);
        } else {
            self.asm.movq_rx(r, x);
        }
    }

    /// Write a computed lane: scalar µops broadcast-fill, vector µops
    /// write lane `i` only.
    fn write_lane(&mut self, dst: BDst, w: u32, i: u32, r: u8) {
        if w == 1 {
            self.store_bcast(dst, r);
        } else {
            let d = self.disp(dst.off, i);
            self.asm.store(RBX, d, r);
        }
    }

    /// Jump to µop `target` unless it is the fall-through successor.
    fn emit_jump(&mut self, target: u32, idx: u32) {
        if target == idx + 1 {
            return;
        }
        let f = self.asm.jmp_fwd();
        self.branch_fixups.push((f, target));
    }

    /// `setcc` + zero-extend (setcc writes only the low byte).
    fn setcc_zx(&mut self, cc: Cc, r: u8) {
        self.asm.setcc(cc, r);
        self.asm.movzx_rr(r, r, 1);
    }

    /// Inline bounds check `addr + size <= len`: loads the address into
    /// RAX and branches to the pushed fixups when the access would
    /// fault (`len < size` underflow, or `addr > len - size`). Pure
    /// register/env reads, so running it before `charge` is
    /// unobservable; the slow path re-runs the µop through a helper
    /// that charges and errors exactly as interpreted.
    fn emit_bounds(&mut self, src: BSrc, i: u32, len_off: i32, size: usize, slow: &mut Vec<Fixup>) {
        self.load_src(RAX, src, i, None);
        self.asm.load(RCX, R15, len_off);
        self.asm.alu_ri(Alu::Sub, RCX, size as i32);
        slow.push(self.asm.jcc_fwd(Cc::B));
        self.asm.alu_rr(Alu::Cmp, RAX, RCX);
        slow.push(self.asm.jcc_fwd(Cc::A));
    }

    /// RAX ← context field for lane `l`. The context dereference clamps
    /// to the last lane exactly like the interpreter; `LaneId` reports
    /// the unclamped lane.
    fn emit_ctx_field(&mut self, field: CtxField, l: u32) {
        let warp = self.program.warp_size;
        let base = l.min(warp - 1) as i32 * CTX_SIZE;
        match field {
            CtxField::Tid(d) => self.ctx_load32(base + CTX_TID + d as i32 * 4),
            CtxField::Ntid(d) => self.ctx_load32(base + CTX_NTID + d as i32 * 4),
            CtxField::Ctaid(d) => self.ctx_load32(base + CTX_CTAID + d as i32 * 4),
            CtxField::Nctaid(d) => self.ctx_load32(base + CTX_NCTAID + d as i32 * 4),
            CtxField::LocalBase => {
                self.asm.load(RCX, R15, ENV_CTXS);
                self.asm.load(RAX, RCX, base + CTX_LOCAL_BASE);
            }
            CtxField::LaneId => self.asm.mov_ri(RAX, l as u64),
            CtxField::WarpSize => self.asm.mov_ri(RAX, warp as u64),
            CtxField::EntryId => self.asm.load(RAX, R15, ENV_ENTRY_ID_MASKED),
        }
    }

    fn ctx_load32(&mut self, disp: i32) {
        self.asm.load(RCX, R15, ENV_CTXS);
        self.asm.load32(RAX, RCX, disp);
    }

    /// Compute one `scalar_bin` lane into RAX (clobbers RCX, and XMM0/1
    /// for float arithmetic). Only called for `bin_ok` shapes, which
    /// never error. Exploits the masked-storage invariant: inputs are
    /// already `mask_to`-normalized, so wrap-then-mask replaces
    /// sext-op-mask wherever the low bits are independent of the high
    /// bits (add/sub/mul/shl), and masked inputs make bitwise results
    /// and unsigned shifts/compares pre-masked.
    #[allow(clippy::too_many_arguments)]
    fn emit_bin_lane(
        &mut self,
        op: BinOp,
        sty: STy,
        signed: bool,
        a: BSrc,
        b: BSrc,
        i: u32,
        prev: Option<u8>,
    ) {
        if sty.is_float() && !matches!(op, BinOp::And | BinOp::Or | BinOp::Xor) {
            self.load_f(XMM0, a, i, sty, RAX, prev);
            self.load_f(XMM1, b, i, sty, RCX, prev);
            let sse = match op {
                BinOp::Add => Sse::Add,
                BinOp::Sub => Sse::Sub,
                BinOp::Mul => Sse::Mul,
                _ => Sse::Div,
            };
            self.asm.sse_sd(sse, XMM0, XMM1);
            self.store_f(RAX, XMM0, sty);
            return;
        }
        self.load_src(RAX, a, i, prev);
        self.load_src(RCX, b, i, prev);
        match op {
            BinOp::Add => {
                self.asm.alu_rr(Alu::Add, RAX, RCX);
                self.mask_reg(RAX, sty);
            }
            BinOp::Sub => {
                self.asm.alu_rr(Alu::Sub, RAX, RCX);
                self.mask_reg(RAX, sty);
            }
            BinOp::Mul => {
                self.asm.imul_rr(RAX, RCX);
                self.mask_reg(RAX, sty);
            }
            BinOp::And => self.asm.alu_rr(Alu::And, RAX, RCX),
            BinOp::Or => self.asm.alu_rr(Alu::Or, RAX, RCX),
            BinOp::Xor => self.asm.alu_rr(Alu::Xor, RAX, RCX),
            BinOp::Shl => {
                self.asm.alu_ri(Alu::And, RCX, shift_mask(sty));
                self.asm.shift_cl(Sh::Shl, RAX);
                self.mask_reg(RAX, sty);
            }
            BinOp::Shr => {
                if signed {
                    self.sext_reg(RAX, sty);
                }
                self.asm.alu_ri(Alu::And, RCX, shift_mask(sty));
                self.asm.shift_cl(if signed { Sh::Sar } else { Sh::Shr }, RAX);
                if signed {
                    self.mask_reg(RAX, sty);
                }
            }
            BinOp::Min | BinOp::Max => {
                if signed {
                    self.sext_reg(RAX, sty);
                    self.sext_reg(RCX, sty);
                }
                self.asm.alu_rr(Alu::Cmp, RAX, RCX);
                let cc = match (op, signed) {
                    (BinOp::Min, true) => Cc::G,
                    (BinOp::Min, false) => Cc::A,
                    (BinOp::Max, true) => Cc::L,
                    _ => Cc::B,
                };
                self.asm.cmov(cc, RAX, RCX);
                if signed {
                    self.mask_reg(RAX, sty);
                }
            }
            _ => unreachable!("µop without an inline template reached emit_bin_lane"),
        }
    }

    /// Compute one `scalar_un` lane into RAX. Only `un_ok` shapes.
    fn emit_un_lane(&mut self, op: UnOp, sty: STy, a: BSrc, i: u32) {
        if sty.is_float() {
            match op {
                UnOp::Neg | UnOp::Abs => {
                    // Sign-bit ops; f32 still takes the widen/narrow
                    // dance so sNaN quietizes exactly like `f_of`/`f_enc`.
                    if sty == STy::F32 {
                        self.load_f(XMM0, a, i, sty, RAX, None);
                        self.asm.movq_rx(RAX, XMM0);
                    } else {
                        self.load_src(RAX, a, i, None);
                    }
                    if op == UnOp::Neg {
                        self.asm.mov_ri(RCX, SIGN_BIT);
                        self.asm.alu_rr(Alu::Xor, RAX, RCX);
                    } else {
                        self.asm.mov_ri(RCX, !SIGN_BIT);
                        self.asm.alu_rr(Alu::And, RAX, RCX);
                    }
                    if sty == STy::F32 {
                        self.asm.movq_xr(XMM0, RAX);
                        self.store_f(RAX, XMM0, sty);
                    }
                }
                UnOp::Sqrt => {
                    self.load_f(XMM0, a, i, sty, RAX, None);
                    self.asm.sse_sd(Sse::Sqrt, XMM0, XMM0);
                    self.store_f(RAX, XMM0, sty);
                }
                UnOp::Rsqrt | UnOp::Rcp => {
                    self.load_f(XMM0, a, i, sty, RAX, None);
                    if op == UnOp::Rsqrt {
                        self.asm.sse_sd(Sse::Sqrt, XMM0, XMM0);
                    }
                    self.asm.mov_ri(RAX, 1.0f64.to_bits());
                    self.asm.movq_xr(XMM1, RAX);
                    self.asm.sse_sd(Sse::Div, XMM1, XMM0);
                    self.store_f(RAX, XMM1, sty);
                }
                _ => unreachable!("µop without an inline template reached emit_un_lane"),
            }
            return;
        }
        self.load_src(RAX, a, i, None);
        match op {
            UnOp::Neg => {
                self.asm.neg(RAX);
                self.mask_reg(RAX, sty);
            }
            UnOp::Not => {
                if sty == STy::I1 {
                    self.asm.alu_ri(Alu::And, RAX, 1);
                    self.asm.alu_ri(Alu::Xor, RAX, 1);
                } else {
                    self.asm.not(RAX);
                    self.mask_reg(RAX, sty);
                }
            }
            UnOp::Abs => {
                // wrapping_abs via the sar/xor/sub identity.
                self.sext_reg(RAX, sty);
                self.asm.mov_rr(RCX, RAX);
                self.asm.shift_ri(Sh::Sar, RCX, 63);
                self.asm.alu_rr(Alu::Xor, RAX, RCX);
                self.asm.alu_rr(Alu::Sub, RAX, RCX);
                self.mask_reg(RAX, sty);
            }
            _ => unreachable!("µop without an inline template reached emit_un_lane"),
        }
    }

    /// Compute one `scalar_cmp` lane (0/1) into RAX; clobbers RCX and
    /// XMM0/1 for floats.
    fn emit_cmp_lane(&mut self, pred: CmpPred, sty: STy, signed: bool, a: BSrc, b: BSrc, i: u32) {
        if sty.is_float() {
            // `ucomisd` raises CF/ZF/PF on unordered; `a`/`ae` are
            // false then (NaN compares false), and Lt/Le swap operands
            // to reuse the same conditions. Eq must also reject
            // unordered (PF), Ne must accept it.
            self.load_f(XMM0, a, i, sty, RAX, None);
            self.load_f(XMM1, b, i, sty, RCX, None);
            match pred {
                CmpPred::Gt => {
                    self.asm.ucomisd(XMM0, XMM1);
                    self.setcc_zx(Cc::A, RAX);
                }
                CmpPred::Ge => {
                    self.asm.ucomisd(XMM0, XMM1);
                    self.setcc_zx(Cc::Ae, RAX);
                }
                CmpPred::Lt => {
                    self.asm.ucomisd(XMM1, XMM0);
                    self.setcc_zx(Cc::A, RAX);
                }
                CmpPred::Le => {
                    self.asm.ucomisd(XMM1, XMM0);
                    self.setcc_zx(Cc::Ae, RAX);
                }
                CmpPred::Eq => {
                    self.asm.ucomisd(XMM0, XMM1);
                    self.setcc_zx(Cc::E, RAX);
                    self.setcc_zx(Cc::Np, RCX);
                    self.asm.alu_rr(Alu::And, RAX, RCX);
                }
                CmpPred::Ne => {
                    self.asm.ucomisd(XMM0, XMM1);
                    self.setcc_zx(Cc::Ne, RAX);
                    self.setcc_zx(Cc::P, RCX);
                    self.asm.alu_rr(Alu::Or, RAX, RCX);
                }
            }
            return;
        }
        self.load_src(RAX, a, i, None);
        self.load_src(RCX, b, i, None);
        if signed {
            self.sext_reg(RAX, sty);
            self.sext_reg(RCX, sty);
        }
        self.asm.alu_rr(Alu::Cmp, RAX, RCX);
        let cc = match (pred, signed) {
            (CmpPred::Eq, _) => Cc::E,
            (CmpPred::Ne, _) => Cc::Ne,
            (CmpPred::Lt, true) => Cc::L,
            (CmpPred::Le, true) => Cc::Le,
            (CmpPred::Gt, true) => Cc::G,
            (CmpPred::Ge, true) => Cc::Ge,
            (CmpPred::Lt, false) => Cc::B,
            (CmpPred::Le, false) => Cc::Be,
            (CmpPred::Gt, false) => Cc::A,
            (CmpPred::Ge, false) => Cc::Ae,
        };
        self.setcc_zx(cc, RAX);
    }

    /// Compute one `scalar_cvt` lane into RAX.
    fn emit_cvt_lane(&mut self, to: STy, from: STy, signed: bool, a: BSrc, i: u32) {
        if from.is_float() {
            if to.is_float() {
                if from == STy::F64 && to == STy::F64 {
                    // f64 → f64 is the identity.
                    self.load_src(RAX, a, i, None);
                } else {
                    // Widen/narrow dance; f32 → f32 keeps it so sNaN
                    // quietizes exactly like the interpreter's
                    // `f_enc(f_of(x))` round trip.
                    self.load_f(XMM0, a, i, from, RAX, None);
                    self.store_f(RAX, XMM0, to);
                }
                return;
            }
            // float → int: `cvttsd2si` fast path; the i64::MIN sentinel
            // (overflow/NaN) — or any negative result for unsigned —
            // takes the saturating `jit_f2i` helper, which returns the
            // Rust `as`-cast value already masked.
            self.load_f(XMM0, a, i, from, RAX, None);
            self.asm.cvttsd2si(RAX, XMM0);
            let slow = if signed {
                self.asm.mov_ri(RCX, i64::MIN as u64);
                self.asm.alu_rr(Alu::Cmp, RAX, RCX);
                self.asm.jcc_fwd(Cc::E)
            } else {
                self.asm.test_rr(RAX, RAX);
                self.asm.jcc_fwd(Cc::S)
            };
            self.mask_reg(RAX, to);
            let done = self.asm.jmp_fwd();
            self.asm.bind(slow);
            self.asm.movq_rx(RDI, XMM0);
            self.asm.mov_ri(RSI, to.bits() as u64);
            self.asm.mov_ri(RDX, signed as u64);
            self.asm.mov_ri(R11, addr_f2i());
            self.asm.call_reg(R11);
            self.asm.bind(done);
            return;
        }
        self.load_src(RAX, a, i, None);
        if to.is_float() {
            if signed {
                self.sext_reg(RAX, from);
            }
            // Unsigned sources below i64 are masked, hence
            // non-negative, so the signed convert is exact; unsigned
            // i64 is excluded by `cvt_ok`. The f32 narrow reproduces
            // the interpreter's double rounding through f64.
            self.asm.cvtsi2sd(XMM0, RAX);
            self.store_f(RAX, XMM0, to);
        } else {
            if signed {
                self.sext_reg(RAX, from);
            }
            self.mask_reg(RAX, to);
        }
    }
}

/// `scalar_bin`'s shift-amount mask for `sty`.
fn shift_mask(sty: STy) -> i32 {
    (sty.bits() - 1).max(1) as i32
}

/// Whether `kind` missed its inline template *solely* because its vector
/// width exceeds [`VEC_INLINE_MAX`] — i.e. the same shape at a narrower
/// width would have inlined. Mirrors the width gates in
/// [`Emitter::try_emit`]; widthless µops (memory, glue, terminators)
/// never qualify.
fn wide_only_fallback(kind: OpKind) -> bool {
    match kind {
        OpKind::Bin { op, sty, w, .. } => w > VEC_INLINE_MAX && bin_ok(op, sty),
        OpKind::Un { op, sty, w, .. } => w > VEC_INLINE_MAX && un_ok(op, sty),
        OpKind::Fma { w, .. } | OpKind::Cmp { w, .. } | OpKind::Select { w, .. } => {
            w > VEC_INLINE_MAX
        }
        OpKind::Cvt { to, from, signed, w, .. } => w > VEC_INLINE_MAX && cvt_ok(to, from, signed),
        _ => false,
    }
}

impl Emitter<'_> {
    /// Lower µop `idx`: an inline template when one applies, otherwise
    /// the whole-µop interpreter helper.
    fn emit_op(&mut self, idx: u32) {
        let op = self.program.code[idx as usize];
        if self.try_emit(idx, op.kind, op.meta) {
            self.stats.template_uops += 1;
        } else {
            self.stats.helper_uops += 1;
            if wide_only_fallback(op.kind) {
                self.stats.wide_helper_uops += 1;
            }
            self.call_step(idx);
        }
    }

    /// Emit an inline template for the µop if its shape has one.
    /// Returns false (emitting nothing) otherwise; terminators always
    /// inline.
    fn try_emit(&mut self, idx: u32, kind: OpKind, meta: OpMeta) -> bool {
        match kind {
            OpKind::Bin { op, sty, signed, w, dst, a, b } => {
                if !bin_ok(op, sty) || w > VEC_INLINE_MAX {
                    return false;
                }
                self.charge(meta);
                for i in 0..w {
                    self.emit_bin_lane(op, sty, signed, a, b, i, None);
                    self.write_lane(dst, w, i, RAX);
                }
                true
            }
            OpKind::Un { op, sty, w, dst, a } => {
                if !un_ok(op, sty) || w > VEC_INLINE_MAX {
                    return false;
                }
                self.charge(meta);
                for i in 0..w {
                    self.emit_un_lane(op, sty, a, i);
                    self.write_lane(dst, w, i, RAX);
                }
                true
            }
            OpKind::Fma { sty, w, dst, a, b, c } => {
                if w > VEC_INLINE_MAX {
                    return false;
                }
                self.charge(meta);
                for i in 0..w {
                    if sty.is_float() {
                        self.load_f(XMM0, a, i, sty, RAX, None);
                        self.load_f(XMM1, b, i, sty, RAX, None);
                        self.load_f(XMM2, c, i, sty, RAX, None);
                        // One fused rounding — `vfmadd213sd` is the
                        // hardware twin of `f64::mul_add`.
                        self.asm.vfmadd213sd(XMM0, XMM1, XMM2);
                        self.store_f(RAX, XMM0, sty);
                    } else {
                        // Low bits of mul/add are independent of the
                        // high bits, so the interpreter's
                        // sext·sext+sext reduces to wrap-and-mask.
                        self.load_src(RAX, a, i, None);
                        self.load_src(RCX, b, i, None);
                        self.asm.imul_rr(RAX, RCX);
                        self.load_src(RCX, c, i, None);
                        self.asm.alu_rr(Alu::Add, RAX, RCX);
                        self.mask_reg(RAX, sty);
                    }
                    self.write_lane(dst, w, i, RAX);
                }
                true
            }
            OpKind::Cmp { pred, sty, signed, w, dst, a, b } => {
                if w > VEC_INLINE_MAX {
                    return false;
                }
                self.charge(meta);
                for i in 0..w {
                    self.emit_cmp_lane(pred, sty, signed, a, b, i);
                    self.write_lane(dst, w, i, RAX);
                }
                true
            }
            OpKind::Select { w, dst, cond, a, b } => {
                if w > VEC_INLINE_MAX {
                    return false;
                }
                self.charge(meta);
                for i in 0..w {
                    self.load_src(RAX, cond, i, None);
                    self.load_src(RCX, a, i, None);
                    self.load_src(RDX, b, i, None);
                    self.asm.test_ri(RAX, 1);
                    self.asm.cmov(Cc::E, RCX, RDX);
                    self.write_lane(dst, w, i, RCX);
                }
                true
            }
            OpKind::Cvt { to, from, signed, w, dst, a } => {
                if !cvt_ok(to, from, signed) || w > VEC_INLINE_MAX {
                    return false;
                }
                self.charge(meta);
                for i in 0..w {
                    self.emit_cvt_lane(to, from, signed, a, i);
                    self.write_lane(dst, w, i, RAX);
                }
                true
            }
            OpKind::Load { sty, space, dst, addr } => {
                let (base_off, len_off, _) = space_offsets(space);
                let size = sty.size_bytes();
                let mut slow = Vec::new();
                self.emit_bounds(addr, 0, len_off, size, &mut slow);
                self.charge(meta);
                // Reload the address: the poll call inside charge
                // clobbers the scratch registers.
                self.load_src(RAX, addr, 0, None);
                self.asm.load(RDX, R15, base_off);
                self.asm.load_index(RCX, RDX, RAX, size as u8);
                if sty == STy::I1 {
                    self.asm.alu_ri(Alu::And, RCX, 1);
                }
                self.store_bcast(dst, RCX);
                let done = self.asm.jmp_fwd();
                for f in slow {
                    self.asm.bind(f);
                }
                self.call_step(idx);
                self.asm.bind(done);
                true
            }
            OpKind::Store { sty, space, addr, value } => {
                let (base_off, len_off, writable) = space_offsets(space);
                if !writable {
                    // Read-only space: the helper charges, then errors
                    // identically to the interpreter.
                    return false;
                }
                let size = sty.size_bytes();
                let mut slow = Vec::new();
                self.emit_bounds(addr, 0, len_off, size, &mut slow);
                self.charge(meta);
                self.load_src(RAX, addr, 0, None);
                self.load_src(RCX, value, 0, None);
                self.asm.load(RDX, R15, base_off);
                self.asm.store_index(RDX, RAX, RCX, size as u8);
                let done = self.asm.jmp_fwd();
                for f in slow {
                    self.asm.bind(f);
                }
                self.call_step(idx);
                self.asm.bind(done);
                true
            }
            OpKind::Insert { w, dst, vec, elem, lane: l } => {
                if w > VEC_INLINE_MAX {
                    return false;
                }
                self.charge(meta);
                // Element first, then the initializer copy, then the
                // lane write — the interpreter's exact order.
                self.load_src(RAX, elem, 0, None);
                if let Some(v) = vec {
                    for i in 0..w {
                        self.load_src(RCX, v, i, None);
                        let d = self.disp(dst.off, i);
                        self.asm.store(RBX, d, RCX);
                    }
                }
                let d = self.disp(dst.off, l);
                self.asm.store(RBX, d, RAX);
                true
            }
            OpKind::Extract { dst, vec, lane: l } => {
                self.charge(meta);
                self.load_src(RAX, vec, l, None);
                self.store_bcast(dst, RAX);
                true
            }
            OpKind::Splat { dst, a } | OpKind::MovScalar { dst, a } | OpKind::Vote { dst, a } => {
                self.charge(meta);
                self.load_src(RAX, a, 0, None);
                if matches!(kind, OpKind::Vote { .. }) {
                    self.asm.alu_ri(Alu::And, RAX, 1);
                }
                self.store_bcast(dst, RAX);
                true
            }
            OpKind::Reduce { op: rop, sty, w, dst, vec } => {
                if w > VEC_INLINE_MAX {
                    return false;
                }
                self.charge(meta);
                match rop {
                    ReduceOp::Add => {
                        self.asm.mov_ri(RAX, 0);
                        for i in 0..w {
                            self.load_src(RCX, vec, i, None);
                            self.mask_reg(RCX, sty);
                            self.asm.alu_rr(Alu::Add, RAX, RCX);
                        }
                        self.mask_reg(RAX, STy::I32);
                    }
                    // Bit 0 of the AND/OR fold is the all/any of the
                    // lanes' bit 0.
                    ReduceOp::All | ReduceOp::Any => {
                        let fold = if matches!(rop, ReduceOp::All) { Alu::And } else { Alu::Or };
                        self.load_src(RAX, vec, 0, None);
                        for i in 1..w {
                            self.load_src(RCX, vec, i, None);
                            self.asm.alu_rr(fold, RAX, RCX);
                        }
                        self.asm.alu_ri(Alu::And, RAX, 1);
                    }
                }
                self.store_bcast(dst, RAX);
                true
            }
            OpKind::CtxRead { field, lane: l, dst } => {
                self.charge(meta);
                self.emit_ctx_field(field, l);
                self.store_bcast(dst, RAX);
                true
            }
            OpKind::SetRpImm { lane: l, id } => {
                self.charge(meta);
                self.asm.load(RCX, R15, ENV_CTXS);
                self.asm.mov_ri(RAX, id as u64);
                self.asm.store(RCX, l as i32 * CTX_SIZE + CTX_RESUME_POINT, RAX);
                true
            }
            OpKind::SetRpReg { lane: l, slot, sty } => {
                self.charge(meta);
                let d = self.disp(slot, 0);
                self.asm.load(RAX, RBX, d);
                self.sext_reg(RAX, sty);
                self.asm.load(RCX, R15, ENV_CTXS);
                self.asm.store(RCX, l as i32 * CTX_SIZE + CTX_RESUME_POINT, RAX);
                true
            }
            OpKind::SetStatus { status } => {
                self.charge(meta);
                let code = match status {
                    ResumeStatus::Branch => STATUS_BRANCH,
                    ResumeStatus::Barrier => STATUS_BARRIER,
                    ResumeStatus::Exit => STATUS_EXIT,
                };
                self.asm.store_imm(R15, ENV_STATUS, code as i32);
                true
            }
            OpKind::MovVec { w, off, a } => {
                if w > VEC_INLINE_MAX {
                    return false;
                }
                self.charge(meta);
                for i in 0..w {
                    self.load_src(RAX, a, i, None);
                    let d = self.disp(off, i);
                    self.asm.store(RBX, d, RAX);
                }
                true
            }
            OpKind::CopyRun { n, src, sstride, dst, prefill } => {
                for i in 0..n {
                    self.charge(meta);
                    let sd = self.disp(src, i * sstride);
                    self.asm.load(RAX, RBX, sd);
                    if i == 0 {
                        if let Some((v, w)) = prefill {
                            for j in 0..w {
                                self.load_src(RCX, v, j, None);
                                let d = self.disp(dst, j);
                                self.asm.store(RBX, d, RCX);
                            }
                        }
                    }
                    let d = self.disp(dst, i);
                    self.asm.store(RBX, d, RAX);
                }
                true
            }
            OpKind::LoadRun { n, sty, space, addr, dst } => {
                let (base_off, len_off, _) = space_offsets(space);
                let size = sty.size_bytes();
                let mut slow: Vec<(Vec<Fixup>, u32)> = Vec::new();
                for i in 0..n {
                    let mut s = Vec::new();
                    self.emit_bounds(BSrc::Lanes(addr), i, len_off, size, &mut s);
                    slow.push((s, i));
                    self.charge(meta);
                    self.load_src(RAX, BSrc::Lanes(addr), i, None);
                    self.asm.load(RDX, R15, base_off);
                    self.asm.load_index(RCX, RDX, RAX, size as u8);
                    if sty == STy::I1 {
                        self.asm.alu_ri(Alu::And, RCX, 1);
                    }
                    let d = self.disp(dst, i);
                    self.asm.store(RBX, d, RCX);
                }
                self.emit_run_slow_paths(idx, slow);
                true
            }
            OpKind::StoreRun { n, sty, space, avec, atmp, val, vstride, smeta } => {
                let (base_off, len_off, writable) = space_offsets(space);
                if !writable {
                    return false;
                }
                let size = sty.size_bytes();
                let mut slow: Vec<(Vec<Fixup>, u32)> = Vec::new();
                for i in 0..n {
                    let mut s = Vec::new();
                    self.emit_bounds(BSrc::Lanes(avec), i, len_off, size, &mut s);
                    slow.push((s, i));
                    self.charge(meta);
                    self.load_src(RAX, BSrc::Lanes(avec), i, None);
                    let d = self.disp(atmp, i);
                    self.asm.store(RBX, d, RAX);
                    self.charge(smeta);
                    self.load_src(RAX, BSrc::Lanes(avec), i, None);
                    let vd = self.disp(val, i * vstride);
                    self.asm.load(RCX, RBX, vd);
                    self.asm.load(RDX, R15, base_off);
                    self.asm.store_index(RDX, RAX, RCX, size as u8);
                }
                self.emit_run_slow_paths(idx, slow);
                true
            }
            OpKind::CtxReadRun { field, n, dst } => {
                for i in 0..n {
                    self.charge(meta);
                    self.emit_ctx_field(field, i);
                    let d = self.disp(dst, i);
                    self.asm.store(RBX, d, RAX);
                }
                true
            }
            OpKind::BinBin {
                op1,
                sty1,
                sg1,
                a1,
                b1,
                dst1,
                op2,
                sty2,
                sg2,
                a2,
                b2,
                dst2,
                meta2,
            } => {
                if !bin_ok(op1, sty1) || !bin_ok(op2, sty2) {
                    return false;
                }
                self.charge(meta);
                self.emit_bin_lane(op1, sty1, sg1, a1, b1, 0, None);
                // v1 lives in rbp across the second charge's poll call.
                self.asm.mov_rr(RBP, RAX);
                if let Some(d) = dst1 {
                    self.store_bcast(d, RBP);
                }
                self.charge(meta2);
                self.emit_bin_lane(op2, sty2, sg2, a2, b2, 0, Some(RBP));
                self.store_bcast(dst2, RAX);
                true
            }
            OpKind::LoadBin { sty1, space, addr, dst1, op2, sty2, sg2, a2, b2, dst2, meta2 } => {
                if !bin_ok(op2, sty2) {
                    return false;
                }
                let (base_off, len_off, _) = space_offsets(space);
                let size = sty1.size_bytes();
                let mut slow = Vec::new();
                self.emit_bounds(addr, 0, len_off, size, &mut slow);
                self.charge(meta);
                self.load_src(RAX, addr, 0, None);
                self.asm.load(RDX, R15, base_off);
                self.asm.load_index(RBP, RDX, RAX, size as u8);
                if sty1 == STy::I1 {
                    self.asm.alu_ri(Alu::And, RBP, 1);
                }
                if let Some(d) = dst1 {
                    self.store_bcast(d, RBP);
                }
                self.charge(meta2);
                self.emit_bin_lane(op2, sty2, sg2, a2, b2, 0, Some(RBP));
                self.store_bcast(dst2, RAX);
                let done = self.asm.jmp_fwd();
                for f in slow {
                    self.asm.bind(f);
                }
                self.call_step(idx);
                self.asm.bind(done);
                true
            }
            OpKind::CmpBr { pred, sty, signed, a, b, dst, taken, fall, term } => {
                self.charge(meta);
                self.emit_cmp_lane(pred, sty, signed, a, b, 0);
                // The 0/1 result must survive the retire's poll call.
                self.asm.mov_rr(RBP, RAX);
                if let Some(d) = dst {
                    self.store_bcast(d, RBP);
                }
                self.retire(term);
                self.asm.test_ri(RBP, 1);
                let f = self.asm.jcc_fwd(Cc::Ne);
                self.branch_fixups.push((f, taken));
                self.emit_jump(fall, idx);
                true
            }
            OpKind::Br { target, term } => {
                self.retire(term);
                self.emit_jump(target, idx);
                true
            }
            OpKind::CondBr { cond, taken, fall, term } => {
                self.retire(term);
                self.load_src(RAX, cond, 0, None);
                self.asm.test_ri(RAX, 1);
                let f = self.asm.jcc_fwd(Cc::Ne);
                self.branch_fixups.push((f, taken));
                self.emit_jump(fall, idx);
                true
            }
            OpKind::Switch { val, cases, default, term } => {
                self.retire(term);
                match val {
                    SwitchVal::BadFloat => {
                        // Errors after the retire, like the interpreter.
                        let f = self.asm.jmp_fwd();
                        self.badfloat_fixups.push(f);
                    }
                    SwitchVal::Reg { .. } | SwitchVal::Imm(_) => {
                        match val {
                            SwitchVal::Reg { slot, sty } => {
                                let d = self.disp(slot, 0);
                                self.asm.load(RAX, RBX, d);
                                self.sext_reg(RAX, sty);
                            }
                            SwitchVal::Imm(v) => self.asm.mov_ri(RAX, v as u64),
                            SwitchVal::BadFloat => unreachable!(),
                        }
                        // Linear compare chain in the side table's
                        // order, preserving the interpreter's
                        // first-match scan.
                        let (start, len) = cases;
                        for ci in start..start + len {
                            let (case, target) = self.program.cases[ci as usize];
                            self.asm.mov_ri(RCX, case as u64);
                            self.asm.alu_rr(Alu::Cmp, RAX, RCX);
                            let f = self.asm.jcc_fwd(Cc::E);
                            self.branch_fixups.push((f, target));
                        }
                        self.emit_jump(default, idx);
                    }
                }
                true
            }
            OpKind::Ret { term } => {
                self.retire(term);
                // `status.unwrap_or(Exit)`: fill resume points unless a
                // SetStatus recorded Branch or Barrier.
                self.asm.load(RAX, R15, ENV_STATUS);
                self.asm.alu_ri(Alu::Cmp, RAX, STATUS_BRANCH as i32);
                let s1 = self.asm.jcc_fwd(Cc::E);
                self.asm.alu_ri(Alu::Cmp, RAX, STATUS_BARRIER as i32);
                let s2 = self.asm.jcc_fwd(Cc::E);
                self.asm.load(RCX, R15, ENV_CTXS);
                for l in 0..self.program.warp_size {
                    let d = l as i32 * CTX_SIZE + CTX_RESUME_POINT;
                    self.asm.store_imm(RCX, d, dpvk_ir::EXIT_ENTRY_ID as i32);
                }
                self.asm.bind(s1);
                self.asm.bind(s2);
                let f = self.asm.jmp_fwd();
                self.ok_fixups.push(f);
                true
            }
            OpKind::Atom { .. } | OpKind::Unsupported { .. } => false,
        }
    }

    /// Per-component slow paths of a run µop: each bounds-check failure
    /// re-enters the run at its component through `jit_run_from`, then
    /// rejoins after the run.
    fn emit_run_slow_paths(&mut self, idx: u32, slow: Vec<(Vec<Fixup>, u32)>) {
        let mut dones = vec![self.asm.jmp_fwd()];
        for (fs, comp) in slow {
            for f in fs {
                self.asm.bind(f);
            }
            self.call_run_from(idx, comp);
            dones.push(self.asm.jmp_fwd());
        }
        for f in dones {
            self.asm.bind(f);
        }
    }

    /// Shared stubs and the epilogue; patches all pending fixups.
    fn finish(&mut self) {
        let fixups = std::mem::take(&mut self.branch_fixups);
        for (f, target) in fixups {
            let t = self.uop_start[target as usize];
            self.asm.patch(f, t);
        }
        // Watchdog and float-switch failures funnel into jit_fail.
        for f in std::mem::take(&mut self.watchdog_fixups) {
            self.asm.bind(f);
        }
        self.asm.mov_ri(RSI, FAIL_WATCHDOG as u64);
        let to_fail = self.asm.jmp_fwd();
        for f in std::mem::take(&mut self.badfloat_fixups) {
            self.asm.bind(f);
        }
        self.asm.mov_ri(RSI, FAIL_FLOAT_SWITCH as u64);
        self.asm.bind(to_fail);
        self.asm.mov_rr(RDI, R15);
        self.asm.mov_ri(R11, addr_fail());
        self.asm.call_reg(R11);
        // jit_fail returned 1 in eax; fall through to the error exit,
        // where failed helper calls also land with eax nonzero.
        for f in std::mem::take(&mut self.err_fixups) {
            self.asm.bind(f);
        }
        let to_exit = self.asm.jmp_fwd();
        for f in std::mem::take(&mut self.ok_fixups) {
            self.asm.bind(f);
        }
        self.asm.alu_rr32(Alu::Xor, RAX, RAX);
        self.asm.bind(to_exit);
        self.asm.pop(R15);
        self.asm.pop(RBX);
        self.asm.pop(RBP);
        self.asm.ret();
    }
}
