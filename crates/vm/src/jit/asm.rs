//! A minimal x86-64 instruction emitter for the copy-and-patch JIT.
//!
//! Just enough of the ISA for the µop templates: 64/32-bit ALU forms,
//! loads/stores with `[base + disp32]` and `[base + index]` addressing,
//! scalar SSE2 double arithmetic, one VEX-encoded FMA, and rel32
//! branches with back-patching. Registers are raw encodings (`RAX`…)
//! rather than an enum — the emitter is an internal tool, not an API.

/// General-purpose register encodings.
pub const RAX: u8 = 0;
pub const RCX: u8 = 1;
pub const RDX: u8 = 2;
pub const RBX: u8 = 3;
pub const RBP: u8 = 5;
pub const RSI: u8 = 6;
pub const RDI: u8 = 7;
pub const R11: u8 = 11;
pub const R15: u8 = 15;

/// XMM register encodings (only 0–7 are used, so no REX.R/B plumbing
/// for the SSE forms).
pub const XMM0: u8 = 0;
pub const XMM1: u8 = 1;
pub const XMM2: u8 = 2;

/// Condition codes (the low nibble of `Jcc`/`SETcc`/`CMOVcc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cc {
    /// Below (unsigned <, or carry set).
    B = 0x2,
    /// Above or equal (unsigned >=).
    Ae = 0x3,
    /// Equal.
    E = 0x4,
    /// Not equal.
    Ne = 0x5,
    /// Below or equal (unsigned <=).
    Be = 0x6,
    /// Above (unsigned >).
    A = 0x7,
    /// Sign set (negative).
    S = 0x8,
    /// Parity (used for NaN detection after `ucomisd`).
    P = 0xA,
    /// No parity.
    Np = 0xB,
    /// Less (signed <).
    L = 0xC,
    /// Greater or equal (signed >=).
    Ge = 0xD,
    /// Less or equal (signed <=).
    Le = 0xE,
    /// Greater (signed >).
    G = 0xF,
}

/// Two-operand ALU ops sharing the standard group-1 encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alu {
    Add = 0,
    Or = 1,
    And = 4,
    Sub = 5,
    Xor = 6,
    Cmp = 7,
}

/// Shift ops (group-2 `/n` extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sh {
    Shl = 4,
    Shr = 5,
    Sar = 7,
}

/// Scalar SSE2 double-precision ops (`F2 0F xx` opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sse {
    Add = 0x58,
    Mul = 0x59,
    Sub = 0x5C,
    Div = 0x5E,
    Sqrt = 0x51,
}

/// A forward-branch placeholder returned by the `*_fwd` emitters; the
/// rel32 at `pos` is patched by [`Asm::patch`] / [`Asm::bind`].
#[derive(Debug, Clone, Copy)]
pub struct Fixup {
    pos: usize,
}

/// The append-only code buffer.
#[derive(Debug, Default)]
pub struct Asm {
    buf: Vec<u8>,
}

impl Asm {
    pub fn new() -> Asm {
        Asm { buf: Vec::with_capacity(4096) }
    }

    pub fn here(&self) -> usize {
        self.buf.len()
    }

    pub fn into_code(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// REX prefix; emitted only when needed unless `w` forces it.
    fn rex(&mut self, w: bool, reg: u8, base: u8) {
        let r = (reg >= 8) as u8;
        let b = (base >= 8) as u8;
        if w || r != 0 || b != 0 {
            self.u8(0x40 | (w as u8) << 3 | r << 2 | b);
        }
    }

    /// REX for forms with an index register (`[base + index]`).
    fn rex_x(&mut self, w: bool, reg: u8, index: u8, base: u8) {
        let r = (reg >= 8) as u8;
        let x = (index >= 8) as u8;
        let b = (base >= 8) as u8;
        if w || r != 0 || x != 0 || b != 0 {
            self.u8(0x40 | (w as u8) << 3 | r << 2 | x << 1 | b);
        }
    }

    /// ModRM `mod=11` register-direct form.
    fn modrm_reg(&mut self, reg: u8, rm: u8) {
        self.u8(0xC0 | (reg & 7) << 3 | (rm & 7));
    }

    /// ModRM (+SIB) for `[base + disp]`.
    fn modrm_mem(&mut self, reg: u8, base: u8, disp: i32) {
        let reg7 = reg & 7;
        let base7 = base & 7;
        let need_sib = base7 == 4; // rsp/r12 need a SIB byte
        let md: u8 = if disp == 0 && base7 != 5 {
            0
        } else if (-128..=127).contains(&disp) {
            1
        } else {
            2
        };
        self.u8(md << 6 | reg7 << 3 | if need_sib { 4 } else { base7 });
        if need_sib {
            self.u8(0x24); // scale=0, no index, base=rsp/r12
        }
        match md {
            1 => self.u8(disp as u8),
            2 => self.u32(disp as u32),
            _ => {}
        }
    }

    /// ModRM + SIB for `[base + index]` (scale 1, no displacement).
    fn modrm_mem_index(&mut self, reg: u8, base: u8, index: u8) {
        debug_assert!(index & 7 != 4, "rsp cannot be an index");
        let base7 = base & 7;
        if base7 == 5 {
            // rbp/r13 base needs an explicit disp8 of 0.
            self.u8(0x40 | (reg & 7) << 3 | 4);
            self.u8((index & 7) << 3 | base7);
            self.u8(0);
        } else {
            self.u8((reg & 7) << 3 | 4);
            self.u8((index & 7) << 3 | base7);
        }
    }

    // -- moves --------------------------------------------------------

    /// `mov r64, imm` — movabs for wide values, the `imm32` forms when
    /// they round-trip.
    pub fn mov_ri(&mut self, r: u8, imm: u64) {
        if imm <= u32::MAX as u64 {
            // mov r32, imm32 zero-extends.
            self.rex(false, 0, r);
            self.u8(0xB8 | (r & 7));
            self.u32(imm as u32);
        } else if imm as i64 >= i32::MIN as i64 && (imm as i64) <= i32::MAX as i64 {
            // mov r/m64, imm32 (sign-extended).
            self.rex(true, 0, r);
            self.u8(0xC7);
            self.modrm_reg(0, r);
            self.u32(imm as u32);
        } else {
            self.rex(true, 0, r);
            self.u8(0xB8 | (r & 7));
            self.u64(imm);
        }
    }

    /// `mov r64, r64`.
    pub fn mov_rr(&mut self, dst: u8, src: u8) {
        self.rex(true, src, dst);
        self.u8(0x89);
        self.modrm_reg(src, dst);
    }

    /// `mov r32, r32` (zero-extends to 64 bits).
    pub fn mov_rr32(&mut self, dst: u8, src: u8) {
        self.rex(false, src, dst);
        self.u8(0x89);
        self.modrm_reg(src, dst);
    }

    /// `mov r64, [base + disp]`.
    pub fn load(&mut self, r: u8, base: u8, disp: i32) {
        self.rex(true, r, base);
        self.u8(0x8B);
        self.modrm_mem(r, base, disp);
    }

    /// `mov [base + disp], r64`.
    pub fn store(&mut self, base: u8, disp: i32, r: u8) {
        self.rex(true, r, base);
        self.u8(0x89);
        self.modrm_mem(r, base, disp);
    }

    /// `mov r32, [base + disp]` (zero-extends).
    pub fn load32(&mut self, r: u8, base: u8, disp: i32) {
        self.rex(false, r, base);
        self.u8(0x8B);
        self.modrm_mem(r, base, disp);
    }

    /// Zero-extending load of `sz` (1/2/4/8) bytes from `[base + index]`.
    pub fn load_index(&mut self, r: u8, base: u8, index: u8, sz: u8) {
        match sz {
            1 => {
                self.rex_x(true, r, index, base);
                self.u8(0x0F);
                self.u8(0xB6);
            }
            2 => {
                self.rex_x(true, r, index, base);
                self.u8(0x0F);
                self.u8(0xB7);
            }
            4 => {
                self.rex_x(false, r, index, base);
                self.u8(0x8B);
            }
            _ => {
                self.rex_x(true, r, index, base);
                self.u8(0x8B);
            }
        }
        self.modrm_mem_index(r, base, index);
    }

    /// Store the low `sz` (1/2/4/8) bytes of `r` to `[base + index]`.
    pub fn store_index(&mut self, base: u8, index: u8, r: u8, sz: u8) {
        match sz {
            1 => {
                // `r` is rax/rcx/rdx/rbx in practice; REX is still
                // emitted when any register is extended.
                self.rex_x(false, r, index, base);
                self.u8(0x88);
            }
            2 => {
                self.u8(0x66);
                self.rex_x(false, r, index, base);
                self.u8(0x89);
            }
            4 => {
                self.rex_x(false, r, index, base);
                self.u8(0x89);
            }
            _ => {
                self.rex_x(true, r, index, base);
                self.u8(0x89);
            }
        }
        self.modrm_mem_index(r, base, index);
    }

    /// `movzx r64, r8` / `movzx r64, r16` (register form).
    pub fn movzx_rr(&mut self, dst: u8, src: u8, sz: u8) {
        self.rex(true, dst, src);
        self.u8(0x0F);
        self.u8(if sz == 1 { 0xB6 } else { 0xB7 });
        self.modrm_reg(dst, src);
    }

    /// `movsx r64, r8` / `movsx r64, r16` / `movsxd r64, r32`.
    pub fn movsx_rr(&mut self, dst: u8, src: u8, sz: u8) {
        self.rex(true, dst, src);
        match sz {
            1 => {
                self.u8(0x0F);
                self.u8(0xBE);
            }
            2 => {
                self.u8(0x0F);
                self.u8(0xBF);
            }
            _ => self.u8(0x63),
        }
        self.modrm_reg(dst, src);
    }

    // -- ALU ----------------------------------------------------------

    /// `op r64, r64`.
    pub fn alu_rr(&mut self, op: Alu, dst: u8, src: u8) {
        self.rex(true, src, dst);
        self.u8((op as u8) * 8 + 1);
        self.modrm_reg(src, dst);
    }

    /// `op r32, r32`.
    pub fn alu_rr32(&mut self, op: Alu, dst: u8, src: u8) {
        self.rex(false, src, dst);
        self.u8((op as u8) * 8 + 1);
        self.modrm_reg(src, dst);
    }

    /// `op r64, imm32` (sign-extended).
    pub fn alu_ri(&mut self, op: Alu, dst: u8, imm: i32) {
        self.rex(true, 0, dst);
        self.u8(0x81);
        self.modrm_reg(op as u8, dst);
        self.u32(imm as u32);
    }

    /// `op r64, [base + disp]`.
    pub fn alu_rm(&mut self, op: Alu, dst: u8, base: u8, disp: i32) {
        self.rex(true, dst, base);
        self.u8((op as u8) * 8 + 3);
        self.modrm_mem(dst, base, disp);
    }

    /// `op qword [base + disp], imm32` (sign-extended).
    pub fn alu_mi(&mut self, op: Alu, base: u8, disp: i32, imm: i32) {
        self.rex(true, 0, base);
        self.u8(0x81);
        self.modrm_mem(op as u8, base, disp);
        self.u32(imm as u32);
    }

    /// `op qword [base + disp], r64`.
    pub fn alu_mr(&mut self, op: Alu, base: u8, disp: i32, src: u8) {
        self.rex(true, src, base);
        self.u8((op as u8) * 8 + 1);
        self.modrm_mem(src, base, disp);
    }

    /// `mov qword [base + disp], imm32` (sign-extended).
    pub fn store_imm(&mut self, base: u8, disp: i32, imm: i32) {
        self.rex(true, 0, base);
        self.u8(0xC7);
        self.modrm_mem(0, base, disp);
        self.u32(imm as u32);
    }

    /// `imul r64, r64`.
    pub fn imul_rr(&mut self, dst: u8, src: u8) {
        self.rex(true, dst, src);
        self.u8(0x0F);
        self.u8(0xAF);
        self.modrm_reg(dst, src);
    }

    /// `neg r64`.
    pub fn neg(&mut self, r: u8) {
        self.rex(true, 0, r);
        self.u8(0xF7);
        self.modrm_reg(3, r);
    }

    /// `not r64`.
    pub fn not(&mut self, r: u8) {
        self.rex(true, 0, r);
        self.u8(0xF7);
        self.modrm_reg(2, r);
    }

    /// `shl/shr/sar r64, cl`.
    pub fn shift_cl(&mut self, op: Sh, r: u8) {
        self.rex(true, 0, r);
        self.u8(0xD3);
        self.modrm_reg(op as u8, r);
    }

    /// `shl/shr/sar r64, imm8`.
    pub fn shift_ri(&mut self, op: Sh, r: u8, imm: u8) {
        self.rex(true, 0, r);
        self.u8(0xC1);
        self.modrm_reg(op as u8, r);
        self.u8(imm);
    }

    /// `test r64, r64`.
    pub fn test_rr(&mut self, a: u8, b: u8) {
        self.rex(true, b, a);
        self.u8(0x85);
        self.modrm_reg(b, a);
    }

    /// `test r32, r32` (for helper return codes in `eax`; the upper
    /// half of `rax` is undefined under the ABI).
    pub fn test_rr32(&mut self, a: u8, b: u8) {
        self.rex(false, b, a);
        self.u8(0x85);
        self.modrm_reg(b, a);
    }

    /// `test r64, imm32`.
    pub fn test_ri(&mut self, r: u8, imm: i32) {
        self.rex(true, 0, r);
        self.u8(0xF7);
        self.modrm_reg(0, r);
        self.u32(imm as u32);
    }

    /// `setcc r8` (low byte; REX is always emitted so rsi/rdi encode
    /// their low byte, not ah-family).
    pub fn setcc(&mut self, cc: Cc, r: u8) {
        self.u8(0x40 | u8::from(r >= 8));
        self.u8(0x0F);
        self.u8(0x90 | cc as u8);
        self.modrm_reg(0, r);
    }

    /// `cmovcc r64, r64`.
    pub fn cmov(&mut self, cc: Cc, dst: u8, src: u8) {
        self.rex(true, dst, src);
        self.u8(0x0F);
        self.u8(0x40 | cc as u8);
        self.modrm_reg(dst, src);
    }

    // -- control flow -------------------------------------------------

    /// `jmp rel32` forward; patch later.
    pub fn jmp_fwd(&mut self) -> Fixup {
        self.u8(0xE9);
        let pos = self.here();
        self.u32(0);
        Fixup { pos }
    }

    /// `jcc rel32` forward; patch later.
    pub fn jcc_fwd(&mut self, cc: Cc) -> Fixup {
        self.u8(0x0F);
        self.u8(0x80 | cc as u8);
        let pos = self.here();
        self.u32(0);
        Fixup { pos }
    }

    /// Resolve a forward fixup to `target`.
    pub fn patch(&mut self, f: Fixup, target: usize) {
        let rel = (target as i64 - (f.pos as i64 + 4)) as i32;
        self.buf[f.pos..f.pos + 4].copy_from_slice(&rel.to_le_bytes());
    }

    /// Bind a fixup to the current position.
    pub fn bind(&mut self, f: Fixup) {
        let here = self.here();
        self.patch(f, here);
    }

    /// `call r64`.
    pub fn call_reg(&mut self, r: u8) {
        self.rex(false, 0, r);
        self.u8(0xFF);
        self.modrm_reg(2, r);
    }

    /// `push r64`.
    pub fn push(&mut self, r: u8) {
        self.rex(false, 0, r);
        self.u8(0x50 | (r & 7));
    }

    /// `pop r64`.
    pub fn pop(&mut self, r: u8) {
        self.rex(false, 0, r);
        self.u8(0x58 | (r & 7));
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.u8(0xC3);
    }

    // -- SSE scalar double --------------------------------------------

    /// `movq xmm, r64`.
    pub fn movq_xr(&mut self, x: u8, r: u8) {
        self.u8(0x66);
        self.u8(0x48 | u8::from(r >= 8));
        self.u8(0x0F);
        self.u8(0x6E);
        self.modrm_reg(x, r);
    }

    /// `movq r64, xmm`.
    pub fn movq_rx(&mut self, r: u8, x: u8) {
        self.u8(0x66);
        self.u8(0x48 | u8::from(r >= 8));
        self.u8(0x0F);
        self.u8(0x7E);
        self.modrm_reg(x, r);
    }

    /// `movd r32, xmm` (zero-extends the f32 bit pattern).
    pub fn movd_rx(&mut self, r: u8, x: u8) {
        self.u8(0x66);
        if r >= 8 {
            self.u8(0x41);
        }
        self.u8(0x0F);
        self.u8(0x7E);
        self.modrm_reg(x, r);
    }

    /// Scalar double op, `xmm_dst op= xmm_src`.
    pub fn sse_sd(&mut self, op: Sse, dst: u8, src: u8) {
        self.u8(0xF2);
        self.u8(0x0F);
        self.u8(op as u8);
        self.modrm_reg(dst, src);
    }

    /// `cvtss2sd xmm, xmm` (widen f32 → f64).
    pub fn cvtss2sd(&mut self, dst: u8, src: u8) {
        self.u8(0xF3);
        self.u8(0x0F);
        self.u8(0x5A);
        self.modrm_reg(dst, src);
    }

    /// `cvtsd2ss xmm, xmm` (narrow f64 → f32, round-to-nearest).
    pub fn cvtsd2ss(&mut self, dst: u8, src: u8) {
        self.u8(0xF2);
        self.u8(0x0F);
        self.u8(0x5A);
        self.modrm_reg(dst, src);
    }

    /// `cvtsi2sd xmm, r64` (exact for |v| < 2^53; i64 → f64 rounding
    /// matches Rust `as f64`).
    pub fn cvtsi2sd(&mut self, x: u8, r: u8) {
        self.u8(0xF2);
        self.u8(0x48 | u8::from(r >= 8));
        self.u8(0x0F);
        self.u8(0x2A);
        self.modrm_reg(x, r);
    }

    /// `cvttsd2si r64, xmm` (truncating f64 → i64; overflow and NaN
    /// produce the `i64::MIN` sentinel, which templates test to branch
    /// to the saturating slow path).
    pub fn cvttsd2si(&mut self, r: u8, x: u8) {
        self.u8(0xF2);
        self.u8(0x48 | (u8::from(r >= 8)) << 2);
        self.u8(0x0F);
        self.u8(0x2C);
        self.modrm_reg(r, x);
    }

    /// `ucomisd xmm, xmm`.
    pub fn ucomisd(&mut self, a: u8, b: u8) {
        self.u8(0x66);
        self.u8(0x0F);
        self.u8(0x2E);
        self.modrm_reg(a, b);
    }

    /// `vfmadd213sd xmm_dst, xmm_b, xmm_c`: dst = dst*b + c, one
    /// rounding — the hardware twin of `f64::mul_add`.
    pub fn vfmadd213sd(&mut self, dst: u8, b: u8, c: u8) {
        // VEX three-byte: C4 [RXB.m-mmmm=0F38] [W.vvvv.L.pp], opcode A9.
        self.u8(0xC4);
        self.u8(0xE2); // R=1 X=1 B=1 (inverted, regs < 8), m-mmmm=0F38
        self.u8(0x80 | ((!b & 0xF) << 3) | 0x01); // W=1, vvvv=~b, L=0, pp=66
        self.u8(0xA9);
        self.modrm_reg(dst, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spot-check encodings against hand-assembled bytes.
    #[test]
    fn encodings_match_reference() {
        let mut a = Asm::new();
        a.mov_rr(RAX, RBX); // 48 89 d8
        a.load(RAX, RBX, 8); // 48 8b 43 08
        a.store(RBX, 256, RCX); // 48 89 8b 00 01 00 00
        a.alu_rr32(Alu::Add, RAX, RCX); // 01 c8
        a.alu_mi(Alu::Add, R15, 0x10, 5); // 49 81 47 10 05 00 00 00
        a.setcc(Cc::E, RCX); // 40 0f 94 c1
        a.movq_xr(XMM0, RAX); // 66 48 0f 6e c0
        a.sse_sd(Sse::Add, XMM0, XMM1); // f2 0f 58 c1
        a.vfmadd213sd(XMM0, XMM1, XMM2); // c4 e2 f1 a9 c2
        let code = a.into_code();
        assert_eq!(
            code,
            [
                0x48, 0x89, 0xD8, //
                0x48, 0x8B, 0x43, 0x08, //
                0x48, 0x89, 0x8B, 0x00, 0x01, 0x00, 0x00, //
                0x01, 0xC8, //
                0x49, 0x81, 0x47, 0x10, 0x05, 0x00, 0x00, 0x00, //
                0x40, 0x0F, 0x94, 0xC1, //
                0x66, 0x48, 0x0F, 0x6E, 0xC0, //
                0xF2, 0x0F, 0x58, 0xC1, //
                0xC4, 0xE2, 0xF1, 0xA9, 0xC2,
            ]
        );
    }

    #[test]
    fn rel32_patching() {
        let mut a = Asm::new();
        let f = a.jmp_fwd(); // 5 bytes
        a.mov_rr(RAX, RBX); // 3 bytes
        a.bind(f); // target = 8
        assert_eq!(&a.into_code()[1..5], &3i32.to_le_bytes());
    }
}
