//! The JIT runtime contract: the `#[repr(C)]` environment block that
//! generated code addresses with fixed offsets, and the `extern "C"`
//! helpers it calls for polling, errors, and µops without an inline
//! template.
//!
//! Every helper reproduces the bytecode interpreter's accounting and
//! semantics exactly — same tick/charge order, same error values, same
//! register and memory effects — by reusing the same `pub(crate)`
//! execution helpers (`exec_bin`, `scalar_cvt`, `atom_rmw`, …) the
//! interpreter itself funnels through.

use std::time::Instant;

use dpvk_ir::{CtxField, ResumeStatus, STy};

use crate::bytecode::{
    exec_bin, exec_fma, exec_un, lane, set_bcast, vec1, vec2, vec3, BytecodeProgram, OpKind,
    OpMeta, F_LOAD, F_RESTORE, F_SPILL, F_STORE,
};
use crate::cancel::CancelToken;
use crate::context::ThreadContext;
use crate::error::VmError;
use crate::interp::{atom_rmw, mask_to, scalar_bin, scalar_cmp, scalar_cvt, sext};
use crate::memory::MemAccess;

/// Status codes written to [`JitEnv::status`]; 0 means "no SetStatus
/// executed yet" (`None` in the interpreter).
pub(crate) const STATUS_NONE: u64 = 0;
pub(crate) const STATUS_BRANCH: u64 = 1;
pub(crate) const STATUS_BARRIER: u64 = 2;
pub(crate) const STATUS_EXIT: u64 = 3;

/// Failure kinds for [`jit_fail`].
pub(crate) const FAIL_WATCHDOG: u32 = 0;
pub(crate) const FAIL_FLOAT_SWITCH: u32 = 1;

/// The per-warp-call environment block. Generated code keeps a pointer
/// to it in `r15` and reads/writes fields at `offset_of!` displacements;
/// the layout is `repr(C)` so those offsets are stable within a build.
///
/// Counter fields (`executed` … `spill_bytes`) start at zero and hold
/// *deltas* for this warp call; the Rust wrapper merges them into the
/// caller's [`crate::stats::ExecStats`] after the generated code
/// returns (on success and on error alike, matching the interpreter,
/// which mutates the caller's stats in place).
#[repr(C)]
pub(crate) struct JitEnv {
    /// Base of the register frame (`slots` u64s).
    pub regs: *mut u64,
    /// Dynamic instructions executed (the watchdog/poll clock).
    pub executed: u64,
    /// Watchdog limit (`ExecLimits::max_instructions`).
    pub max_instructions: u64,
    /// Next `executed` value at which to poll cancel/deadline;
    /// `u64::MAX` when polling is disabled.
    pub next_poll: u64,
    /// Modeled cycles accumulated since the last block retire.
    pub cycles: u64,
    /// `ExecStats::instructions` delta.
    pub instructions: u64,
    /// `ExecStats::flops` delta.
    pub flops: u64,
    /// `ExecStats::loads` delta.
    pub loads: u64,
    /// `ExecStats::stores` delta.
    pub stores: u64,
    /// `ExecStats::restore_loads` delta.
    pub restore_loads: u64,
    /// `ExecStats::restore_bytes` delta.
    pub restore_bytes: u64,
    /// `ExecStats::spill_stores` delta.
    pub spill_stores: u64,
    /// `ExecStats::spill_bytes` delta.
    pub spill_bytes: u64,
    /// `ExecStats::cycles_body` delta.
    pub cycles_body: u64,
    /// `ExecStats::cycles_yield` delta.
    pub cycles_yield: u64,
    /// Last `SetStatus` value (STATUS_*).
    pub status: u64,
    /// Pre-masked `EntryId` context value (`mask_to(entry_id, I32)`).
    pub entry_id_masked: u64,
    /// Thread contexts of this warp.
    pub ctxs: *mut ThreadContext,
    /// Number of contexts (= warp size).
    pub nctx: u64,
    /// Register frame slot count (for helper-side slice reconstruction).
    pub slots: u64,
    /// Global arena base/len.
    pub global_base: *mut u8,
    /// Global arena length.
    pub global_len: u64,
    /// Shared memory base.
    pub shared_base: *mut u8,
    /// Shared memory length.
    pub shared_len: u64,
    /// Local arena base.
    pub local_base: *mut u8,
    /// Local arena length.
    pub local_len: u64,
    /// Parameter buffer base (read-only).
    pub param_base: *const u8,
    /// Parameter buffer length.
    pub param_len: u64,
    /// Constant bank base (read-only).
    pub const_base: *const u8,
    /// Constant bank length.
    pub const_len: u64,
    /// Type-erased pointer to the [`HostCtx`] for this call.
    pub host: *mut HostCtx,
}

/// Host-side call state the generated code never touches directly; the
/// helpers reach it through [`JitEnv::host`].
pub(crate) struct HostCtx {
    /// The program being executed (for helper-side µop decode).
    pub program: *const BytecodeProgram,
    /// Type-erased `*mut MemAccess<'_>` (lifetime erased; only
    /// dereferenced during the warp call it was built for).
    pub mem: *mut MemAccess<'static>,
    /// Cancellation token, null when absent.
    pub cancel: *const CancelToken,
    /// Wall-clock deadline, `None` when absent.
    pub deadline: Option<Instant>,
    /// Instructions between polls (`ExecLimits::check_interval.max(1)`).
    pub poll_stride: u64,
    /// The error produced by a failing helper, picked up by the wrapper
    /// when generated code returns nonzero.
    pub err: Option<VmError>,
}

impl JitEnv {
    #[inline(always)]
    unsafe fn host(&mut self) -> &mut HostCtx {
        &mut *self.host
    }

    #[inline(always)]
    unsafe fn regs_mut(&mut self) -> &mut [u64] {
        std::slice::from_raw_parts_mut(self.regs, self.slots as usize)
    }

    #[inline(always)]
    unsafe fn ctxs_mut(&mut self) -> &mut [ThreadContext] {
        std::slice::from_raw_parts_mut(self.ctxs, self.nctx as usize)
    }
}

/// The `tick!` macro of the interpreter loop, field-for-field.
#[inline(always)]
unsafe fn tick(env: &mut JitEnv) -> Result<(), VmError> {
    env.executed += 1;
    if env.executed > env.max_instructions {
        return Err(VmError::Watchdog { limit: env.max_instructions });
    }
    if env.executed >= env.next_poll {
        let stride = env.host().poll_stride;
        env.next_poll = env.executed + stride;
        let cancel = env.host().cancel;
        if !cancel.is_null() && (*cancel).is_cancelled() {
            return Err(VmError::Cancelled);
        }
        if let Some(deadline) = env.host().deadline {
            if Instant::now() >= deadline {
                return Err(VmError::Deadline);
            }
        }
    }
    Ok(())
}

/// The `charge!` macro of the interpreter loop.
#[inline(always)]
unsafe fn charge(env: &mut JitEnv, meta: OpMeta) -> Result<(), VmError> {
    tick(env)?;
    env.cycles += meta.cost as u64;
    env.flops += meta.flops as u64;
    if meta.flags != 0 {
        if meta.flags & F_LOAD != 0 {
            env.loads += 1;
            if meta.flags & F_RESTORE != 0 {
                env.restore_loads += 1;
                env.restore_bytes += meta.bytes as u64;
            }
        }
        if meta.flags & F_STORE != 0 {
            env.stores += 1;
            if meta.flags & F_SPILL != 0 {
                env.spill_stores += 1;
                env.spill_bytes += meta.bytes as u64;
            }
        }
    }
    Ok(())
}

#[inline(always)]
unsafe fn fail(env: &mut JitEnv, e: VmError) -> u32 {
    env.host().err = Some(e);
    1
}

/// Poll helper: generated code calls this when `executed` crosses
/// `next_poll` (the poll body of the interpreter's `tick!`). Returns 0
/// to continue, 1 on cancellation/deadline (error stored in the host).
pub(crate) unsafe extern "C" fn jit_poll(env: *mut JitEnv) -> u32 {
    let env = &mut *env;
    let stride = env.host().poll_stride;
    env.next_poll = env.executed + stride;
    let cancel = env.host().cancel;
    if !cancel.is_null() && (*cancel).is_cancelled() {
        return fail(env, VmError::Cancelled);
    }
    if let Some(deadline) = env.host().deadline {
        if Instant::now() >= deadline {
            return fail(env, VmError::Deadline);
        }
    }
    0
}

/// Terminal-failure helper for inline templates (watchdog trip, float
/// switch). Always returns 1.
pub(crate) unsafe extern "C" fn jit_fail(env: *mut JitEnv, kind: u32) -> u32 {
    let env = &mut *env;
    let err = match kind {
        FAIL_WATCHDOG => VmError::Watchdog { limit: env.max_instructions },
        _ => VmError::Unsupported("float switch".into()),
    };
    fail(env, err)
}

/// Slow-path float→int conversion lane (saturating Rust `as` casts; the
/// inline template branches here only when `cvttsd2si` reports overflow
/// or NaN). Pure: no env access.
pub(crate) unsafe extern "C" fn jit_f2i(bits: u64, to_bits: u32, signed: u32) -> u64 {
    let x = f64::from_bits(bits);
    let to = match to_bits {
        1 => STy::I1,
        8 => STy::I8,
        16 => STy::I16,
        32 => STy::I32,
        _ => STy::I64,
    };
    if signed != 0 {
        mask_to((x as i64) as u64, to)
    } else {
        mask_to(x as u64, to)
    }
}

/// Execute µop `idx` — charge included — through the interpreter's own
/// execution helpers. The universal fallback for op shapes without an
/// inline template; also the whole-op slow path behind inline
/// fast-path guards (memory bounds), re-running the op from its start
/// so charges and partial effects land exactly as interpreted.
///
/// Returns 0 on success, 1 with the error stored in the host.
///
/// # Safety
///
/// Must only be called from generated code during a warp call whose
/// `JitEnv`/`HostCtx` pointers are all live.
pub(crate) unsafe extern "C" fn jit_step(env: *mut JitEnv, idx: u32) -> u32 {
    let env = &mut *env;
    match step_op(env, idx) {
        Ok(()) => 0,
        Err(e) => fail(env, e),
    }
}

/// Resume a `LoadRun`/`StoreRun` at component `comp` and run it to the
/// end of the µop. The inline template branches here when a
/// component's bounds check fails — the helper re-runs *that*
/// component from its first charge (the inline fast path charges only
/// after the bounds check passes), so a faulting run leaves the same
/// stats and register prefix as the interpreter.
pub(crate) unsafe extern "C" fn jit_run_from(env: *mut JitEnv, idx: u32, comp: u32) -> u32 {
    let env = &mut *env;
    match run_from(env, idx, comp as usize) {
        Ok(()) => 0,
        Err(e) => fail(env, e),
    }
}

unsafe fn run_from(env: &mut JitEnv, idx: u32, comp: usize) -> Result<(), VmError> {
    let program = &*env.host().program;
    let op = program.code[idx as usize];
    let mem = &mut *env.host().mem;
    match op.kind {
        OpKind::LoadRun { n, sty, space, addr, dst } => {
            let size = sty.size_bytes();
            for i in comp..n as usize {
                charge(env, op.meta)?;
                let regs = env.regs_mut();
                let a = regs[addr as usize + i];
                let bits = mem.read(space, a, size)?;
                env.regs_mut()[dst as usize + i] = mask_to(bits, sty);
            }
            Ok(())
        }
        OpKind::StoreRun { n, sty, space, avec, atmp, val, vstride, smeta } => {
            let size = sty.size_bytes();
            for i in comp..n as usize {
                charge(env, op.meta)?;
                let regs = env.regs_mut();
                let a = regs[avec as usize + i];
                regs[atmp as usize + i] = a;
                charge(env, smeta)?;
                let v = env.regs_mut()[val as usize + i * vstride as usize];
                mem.write(space, a, size, v)?;
            }
            Ok(())
        }
        _ => unreachable!("jit_run_from on a non-run µop"),
    }
}

/// One full µop through the shared interpreter helpers. Mirrors the
/// corresponding arms of the interpreter's `exec_loop`; terminators
/// never reach here (they always have inline templates).
unsafe fn step_op(env: &mut JitEnv, idx: u32) -> Result<(), VmError> {
    let program = &*env.host().program;
    let op = program.code[idx as usize];
    match op.kind {
        OpKind::Bin { op: bop, sty, signed, w, dst, a, b } => {
            charge(env, op.meta)?;
            exec_bin(env.regs_mut(), bop, sty, signed, w, dst, a, b, 0)?;
        }
        OpKind::Un { op: uop, sty, w, dst, a } => {
            charge(env, op.meta)?;
            exec_un(env.regs_mut(), uop, sty, w, dst, a)?;
        }
        OpKind::Fma { sty, w, dst, a, b, c } => {
            charge(env, op.meta)?;
            exec_fma(env.regs_mut(), sty, w, dst, a, b, c);
        }
        OpKind::Cmp { pred, sty, signed, w, dst, a, b } => {
            charge(env, op.meta)?;
            let regs = env.regs_mut();
            if w == 1 {
                let r = scalar_cmp(pred, sty, signed, lane(regs, a, 0, 0), lane(regs, b, 0, 0));
                set_bcast(regs, dst, r);
            } else {
                vec2(regs, w as usize, dst.off as usize, a, b, |x, y| {
                    scalar_cmp(pred, sty, signed, x, y)
                });
            }
        }
        OpKind::Select { w, dst, cond, a, b } => {
            charge(env, op.meta)?;
            let regs = env.regs_mut();
            if w == 1 {
                let r = if lane(regs, cond, 0, 0) & 1 != 0 {
                    lane(regs, a, 0, 0)
                } else {
                    lane(regs, b, 0, 0)
                };
                set_bcast(regs, dst, r);
            } else {
                vec3(regs, w as usize, dst.off as usize, cond, a, b, |c, x, y| {
                    if c & 1 != 0 {
                        x
                    } else {
                        y
                    }
                });
            }
        }
        OpKind::Cvt { to, from, signed, w, dst, a } => {
            charge(env, op.meta)?;
            let regs = env.regs_mut();
            if w == 1 {
                let r = scalar_cvt(to, from, signed, lane(regs, a, 0, 0));
                set_bcast(regs, dst, r);
            } else {
                vec1(regs, w as usize, dst.off as usize, a, |x| scalar_cvt(to, from, signed, x));
            }
        }
        OpKind::Load { sty, space, dst, addr } => {
            charge(env, op.meta)?;
            let a = lane(env.regs_mut(), addr, 0, 0);
            let mem = &mut *env.host().mem;
            let bits = mem.read(space, a, sty.size_bytes())?;
            set_bcast(env.regs_mut(), dst, mask_to(bits, sty));
        }
        OpKind::Store { sty, space, addr, value } => {
            charge(env, op.meta)?;
            let regs = env.regs_mut();
            let a = lane(regs, addr, 0, 0);
            let v = lane(regs, value, 0, 0);
            let mem = &mut *env.host().mem;
            mem.write(space, a, sty.size_bytes(), v)?;
        }
        OpKind::Atom { sty, space, op: akind, signed, dst, addr, a, b } => {
            charge(env, op.meta)?;
            let regs = env.regs_mut();
            let addr_v = lane(regs, addr, 0, 0);
            let av = lane(regs, a, 0, 0);
            let bv = b.map(|b| lane(regs, b, 0, 0));
            let mem = &mut *env.host().mem;
            let old = atom_rmw(mem, sty, space, akind, signed, addr_v, av, bv)?;
            set_bcast(env.regs_mut(), dst, mask_to(old, sty));
        }
        OpKind::Insert { w, dst, vec, elem, lane: l } => {
            charge(env, op.meta)?;
            let regs = env.regs_mut();
            let e = lane(regs, elem, 0, 0);
            let doff = dst.off as usize;
            if let Some(v) = vec {
                for i in 0..w as usize {
                    regs[doff + i] = lane(regs, v, i, 0);
                }
            }
            regs[doff + l as usize] = e;
        }
        OpKind::Extract { dst, vec, lane: l } => {
            charge(env, op.meta)?;
            let regs = env.regs_mut();
            let v = lane(regs, vec, l as usize, 0);
            set_bcast(regs, dst, v);
        }
        OpKind::Splat { dst, a } => {
            charge(env, op.meta)?;
            let regs = env.regs_mut();
            let v = lane(regs, a, 0, 0);
            set_bcast(regs, dst, v);
        }
        OpKind::Reduce { op: rop, sty, w, dst, vec } => {
            charge(env, op.meta)?;
            let regs = env.regs_mut();
            let w = w as usize;
            let r = match rop {
                dpvk_ir::ReduceOp::Add => {
                    let mut sum: u64 = 0;
                    for i in 0..w {
                        sum = sum.wrapping_add(mask_to(lane(regs, vec, i, 0), sty));
                    }
                    mask_to(sum, STy::I32)
                }
                dpvk_ir::ReduceOp::All => (0..w).all(|i| lane(regs, vec, i, 0) & 1 != 0) as u64,
                dpvk_ir::ReduceOp::Any => (0..w).any(|i| lane(regs, vec, i, 0) & 1 != 0) as u64,
            };
            set_bcast(regs, dst, r);
        }
        OpKind::CtxRead { field, lane: l, dst } => {
            charge(env, op.meta)?;
            let v = ctx_field(env, field, l as usize, program.warp_size);
            set_bcast(env.regs_mut(), dst, v);
        }
        OpKind::SetRpImm { lane: l, id } => {
            charge(env, op.meta)?;
            env.ctxs_mut()[l as usize].resume_point = id;
        }
        OpKind::SetRpReg { lane: l, slot, sty } => {
            charge(env, op.meta)?;
            let v = sext(env.regs_mut()[slot as usize], sty);
            env.ctxs_mut()[l as usize].resume_point = v;
        }
        OpKind::SetStatus { status } => {
            charge(env, op.meta)?;
            env.status = match status {
                ResumeStatus::Branch => STATUS_BRANCH,
                ResumeStatus::Barrier => STATUS_BARRIER,
                ResumeStatus::Exit => STATUS_EXIT,
            };
        }
        OpKind::Vote { dst, a } => {
            charge(env, op.meta)?;
            let regs = env.regs_mut();
            let v = lane(regs, a, 0, 0);
            set_bcast(regs, dst, v & 1);
        }
        OpKind::MovVec { w, off, a } => {
            charge(env, op.meta)?;
            vec1(env.regs_mut(), w as usize, off as usize, a, |x| x);
        }
        OpKind::MovScalar { dst, a } => {
            charge(env, op.meta)?;
            let regs = env.regs_mut();
            let v = lane(regs, a, 0, 0);
            set_bcast(regs, dst, v);
        }
        OpKind::CopyRun { n, src, sstride, dst, prefill } => {
            for i in 0..n as usize {
                charge(env, op.meta)?;
                let regs = env.regs_mut();
                let e = regs[src as usize + i * sstride as usize];
                if i == 0 {
                    if let Some((v, w)) = prefill {
                        for j in 0..w as usize {
                            regs[dst as usize + j] = lane(regs, v, j, 0);
                        }
                    }
                }
                env.regs_mut()[dst as usize + i] = e;
            }
        }
        OpKind::LoadRun { .. } | OpKind::StoreRun { .. } => {
            return run_from(env, idx, 0);
        }
        OpKind::CtxReadRun { field, n, dst } => {
            for i in 0..n as usize {
                charge(env, op.meta)?;
                let v = ctx_field(env, field, i, program.warp_size);
                env.regs_mut()[dst as usize + i] = v;
            }
        }
        OpKind::Unsupported { what } => {
            charge(env, op.meta)?;
            return Err(VmError::Unsupported(what.to_string()));
        }
        OpKind::BinBin { op1, sty1, sg1, a1, b1, dst1, op2, sty2, sg2, a2, b2, dst2, meta2 } => {
            charge(env, op.meta)?;
            let regs = env.regs_mut();
            let v1 = scalar_bin(op1, sty1, sg1, lane(regs, a1, 0, 0), lane(regs, b1, 0, 0))?;
            if let Some(d) = dst1 {
                set_bcast(regs, d, v1);
            }
            charge(env, meta2)?;
            let regs = env.regs_mut();
            let v2 = scalar_bin(op2, sty2, sg2, lane(regs, a2, 0, v1), lane(regs, b2, 0, v1))?;
            set_bcast(regs, dst2, v2);
        }
        OpKind::LoadBin { sty1, space, addr, dst1, op2, sty2, sg2, a2, b2, dst2, meta2 } => {
            charge(env, op.meta)?;
            let a = lane(env.regs_mut(), addr, 0, 0);
            let mem = &mut *env.host().mem;
            let bits = mem.read(space, a, sty1.size_bytes())?;
            let v1 = mask_to(bits, sty1);
            let regs = env.regs_mut();
            if let Some(d) = dst1 {
                set_bcast(regs, d, v1);
            }
            charge(env, meta2)?;
            let regs = env.regs_mut();
            let v2 = scalar_bin(op2, sty2, sg2, lane(regs, a2, 0, v1), lane(regs, b2, 0, v1))?;
            set_bcast(regs, dst2, v2);
        }
        OpKind::CmpBr { .. }
        | OpKind::Br { .. }
        | OpKind::CondBr { .. }
        | OpKind::Switch { .. }
        | OpKind::Ret { .. } => {
            unreachable!("terminator µop routed to jit_step")
        }
    }
    Ok(())
}

#[inline(always)]
unsafe fn ctx_field(env: &mut JitEnv, field: CtxField, l: usize, warp_size: u32) -> u64 {
    let entry_masked = env.entry_id_masked;
    let ctxs = env.ctxs_mut();
    let ctx = &ctxs[l.min(ctxs.len() - 1)];
    match field {
        CtxField::Tid(d) => ctx.tid[d as usize] as u64,
        CtxField::Ntid(d) => ctx.ntid[d as usize] as u64,
        CtxField::Ctaid(d) => ctx.ctaid[d as usize] as u64,
        CtxField::Nctaid(d) => ctx.nctaid[d as usize] as u64,
        CtxField::LocalBase => ctx.local_base,
        CtxField::LaneId => l as u64,
        CtxField::WarpSize => warp_size as u64,
        CtxField::EntryId => entry_masked,
    }
}
