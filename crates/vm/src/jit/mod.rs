//! The native JIT tier: copy-and-patch x86-64 code generation over the
//! decoded µop stream.
//!
//! [`compile`] lowers a validated [`BytecodeProgram`] to straight-line
//! machine code — one template per µop, operands patched to
//! register-frame displacements, branches fixed up to µop entry offsets
//! — and seals it into a W^X executable mapping.
//! [`execute_warp_jit`] then runs warps through that code with the same
//! contract as [`execute_warp_bytecode`]: bit-identical lane values,
//! modeled cycles, [`crate::ExecStats`] deltas, memory effects, errors
//! and watchdog/deadline/cancellation polling.
//!
//! µop shapes without an inline template (atomics, division,
//! transcendentals, vectors wider than the inline cap) call back into
//! the interpreter's own helpers at run time, so coverage gaps cost
//! speed, never correctness. Hosts where native emission is unavailable
//! (non-x86-64, no FMA, or a locked-down address space) simply get
//! `None` from [`compile`] and the caller stays on the bytecode engine.

mod asm;
mod code;
mod emit;
mod rt;

pub use emit::JitEmitStats;

use dpvk_ir::{ResumeStatus, STy};

use crate::bytecode::{execute_warp_bytecode, BytecodeProgram};
use crate::cancel::CancelToken;
use crate::context::ThreadContext;
use crate::error::VmError;
use crate::frame::RegFrame;
use crate::interp::{mask_to, ExecLimits, WarpOutcome};
use crate::memory::MemAccess;
use crate::stats::ExecStats;

/// A program compiled to native x86-64 by the JIT tier.
///
/// Immutable once built; share it across worker threads with an `Arc`
/// and run warps through [`execute_warp_jit`]. The executable mapping
/// is unmapped on drop.
#[derive(Debug)]
pub struct JitProgram {
    mem: code::ExecMem,
    stats: JitEmitStats,
}

impl JitProgram {
    /// Emission counters for this compilation (code bytes, template vs.
    /// helper µops).
    pub fn emit_stats(&self) -> JitEmitStats {
        self.stats
    }
}

// SAFETY: the mapping is written once at construction and only read
// (executed) afterwards; all mutable state lives in the per-call
// `JitEnv`.
unsafe impl Send for JitProgram {}
unsafe impl Sync for JitProgram {}

/// Widest vector µop the JIT lowers lane-by-lane inline; wider vector
/// µops stay correct but call back into the interpreter helper per
/// dynamic dispatch (counted in [`JitEmitStats::wide_helper_uops`]).
/// Width-selection policies use this to anticipate the JIT efficiency
/// cliff when ranking candidate warp widths.
pub fn jit_inline_width_cap() -> u32 {
    emit::VEC_INLINE_MAX
}

/// Whether this host can emit and run native code at all. When false,
/// [`compile`] always returns `None`.
pub fn jit_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        code::ExecMem::supported() && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Compile `program` to native code. Returns `None` when the host
/// cannot run JIT code (see [`jit_supported`]) or a structural limit
/// rules out emission (register frame too large for disp32 addressing);
/// the caller should fall back to the bytecode engine.
pub fn compile(program: &BytecodeProgram) -> Option<JitProgram> {
    if !jit_supported() {
        return None;
    }
    let (bytes, mut stats) = emit::emit_program(program)?;
    let mem = code::ExecMem::with_code(&bytes)?;
    stats.code_bytes = mem.len() as u64;
    Some(JitProgram { mem, stats })
}

/// Execute one warp through JIT-compiled code, starting at µop 0.
///
/// The native twin of [`execute_warp_bytecode`]: same contract, same
/// errors, bit-identical modeled cycles, [`ExecStats`] and memory
/// effects. `jit` must have been produced by [`compile`] from this
/// exact `program`. Warps under active µop profiling are routed through
/// the interpreter (counted as [`dpvk_trace::Counter::JitFallbackWarps`])
/// so the profiler still sees per-µop samples.
///
/// # Errors
///
/// Identical to `execute_warp_bytecode`: memory faults, division by
/// zero, watchdog, deadline, cancellation.
///
/// # Panics
///
/// Panics if `ctxs.len() != program.warp_size()`.
#[allow(clippy::too_many_arguments)]
pub fn execute_warp_jit(
    jit: &JitProgram,
    program: &BytecodeProgram,
    scratch: &mut RegFrame,
    ctxs: &mut [ThreadContext],
    entry_id: i64,
    mem: &mut MemAccess<'_>,
    stats: &mut ExecStats,
    limits: &ExecLimits,
    cancel: Option<&CancelToken>,
) -> Result<WarpOutcome, VmError> {
    // The µop profiler needs the interpreter's per-op dispatch to
    // attribute samples; native code has no per-µop hook.
    if dpvk_trace::profile::uop_enabled() && program.profile_key().is_some() {
        dpvk_trace::add(dpvk_trace::Counter::JitFallbackWarps, 1);
        return execute_warp_bytecode(program, scratch, ctxs, entry_id, mem, stats, limits, cancel);
    }

    assert_eq!(
        ctxs.len(),
        program.warp_size as usize,
        "warp size mismatch: {} contexts for a width-{} program",
        ctxs.len(),
        program.warp_size
    );
    let regs = scratch.prepare_slots(program.slots);
    stats.warp_entries += 1;
    stats.thread_entries += program.warp_size as u64;

    let poll_stride = limits.check_interval.max(1);
    let polling = limits.deadline.is_some() || cancel.is_some();
    let (global_base, global_len) = mem.global.raw_parts();

    let mut host = rt::HostCtx {
        program: program as *const BytecodeProgram,
        // Lifetime erased; only dereferenced inside this call, while the
        // borrow is live.
        mem: (mem as *mut MemAccess<'_>).cast::<MemAccess<'static>>(),
        cancel: cancel.map_or(std::ptr::null(), |c| c as *const CancelToken),
        deadline: limits.deadline,
        poll_stride,
        err: None,
    };
    let mut env = rt::JitEnv {
        regs: regs.as_mut_ptr(),
        executed: 0,
        max_instructions: limits.max_instructions,
        next_poll: if polling { poll_stride } else { u64::MAX },
        cycles: 0,
        instructions: 0,
        flops: 0,
        loads: 0,
        stores: 0,
        restore_loads: 0,
        restore_bytes: 0,
        spill_stores: 0,
        spill_bytes: 0,
        cycles_body: 0,
        cycles_yield: 0,
        status: rt::STATUS_NONE,
        entry_id_masked: mask_to(entry_id as u64, STy::I32),
        ctxs: ctxs.as_mut_ptr(),
        nctx: ctxs.len() as u64,
        slots: program.slots as u64,
        global_base,
        global_len: global_len as u64,
        shared_base: mem.shared.as_mut_ptr(),
        shared_len: mem.shared.len() as u64,
        local_base: mem.local.as_mut_ptr(),
        local_len: mem.local.len() as u64,
        param_base: mem.param.as_ptr(),
        param_len: mem.param.len() as u64,
        const_base: mem.cbank.as_ptr(),
        const_len: mem.cbank.len() as u64,
        host: &mut host,
    };

    // SAFETY: `jit.mem` holds code emitted for this program's µop
    // stream by `emit_program`, entry at offset 0, with the extern "C"
    // signature the prologue/epilogue implement; `env` outlives the
    // call and every pointer in it is valid for its stated length.
    let rc = unsafe {
        let entry: unsafe extern "C" fn(*mut rt::JitEnv) -> u32 =
            std::mem::transmute(jit.mem.base());
        entry(&mut env)
    };

    // Merge the counter deltas on success and error alike — the
    // interpreter mutates the caller's stats in place as it runs. The
    // unflushed block remainder `env.cycles` is dropped, matching the
    // local accumulator the interpreter abandons when a block errors
    // before retiring.
    stats.instructions += env.instructions;
    stats.flops += env.flops;
    stats.loads += env.loads;
    stats.stores += env.stores;
    stats.restore_loads += env.restore_loads;
    stats.restore_bytes += env.restore_bytes;
    stats.spill_stores += env.spill_stores;
    stats.spill_bytes += env.spill_bytes;
    stats.cycles_body += env.cycles_body;
    stats.cycles_yield += env.cycles_yield;

    if rc != 0 {
        return Err(host.err.take().expect("jit helper signalled an error without recording one"));
    }
    let status = match env.status {
        rt::STATUS_BRANCH => ResumeStatus::Branch,
        rt::STATUS_BARRIER => ResumeStatus::Barrier,
        _ => ResumeStatus::Exit,
    };
    Ok(WarpOutcome { status })
}
