//! The IR interpreter: executes one warp of thread contexts through a
//! (scalar or vectorized) kernel function, charging modeled cycles.

use dpvk_ir::{
    AtomKind, BinOp, BlockKind, CmpPred, CtxField, Function, Inst, ReduceOp, ResumeStatus, STy,
    Term, Type, UnOp, Value,
};

use std::time::Instant;

use crate::cancel::CancelToken;
use crate::context::ThreadContext;
use crate::cost::{inst_cost, inst_flops, term_cost, CostInfo};
use crate::error::VmError;
use crate::frame::{FrameLayout, RegFrame};
use crate::machine::MachineModel;
use crate::memory::MemAccess;
use crate::stats::ExecStats;

/// Execution limits guarding against runaway kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum dynamic instructions per warp call.
    pub max_instructions: u64,
    /// Wall-clock instant after which execution fails with
    /// [`VmError::Deadline`]. `None` disables the deadline.
    pub deadline: Option<Instant>,
    /// How many interpreted instructions run between deadline and
    /// cancellation polls. Smaller values kill runaway kernels faster at
    /// slightly higher interpreter overhead.
    pub check_interval: u64,
}

impl ExecLimits {
    /// Limits with a wall-clock deadline `budget` from now.
    pub fn with_deadline(budget: std::time::Duration) -> Self {
        ExecLimits { deadline: Some(Instant::now() + budget), ..Self::default() }
    }
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits { max_instructions: 1 << 32, deadline: None, check_interval: 1024 }
    }
}

/// Outcome of one warp execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpOutcome {
    /// Why the warp yielded. Per-thread resume points have been written to
    /// the thread contexts.
    pub status: ResumeStatus,
}

/// Mask `bits` to the width of `sty` (zero-extension representation).
///
/// Shared with the pre-decoded bytecode engine (`crate::bytecode`), which
/// must produce bit-identical lane values: both engines funnel every
/// scalar operation through the helpers below.
#[inline]
pub(crate) fn mask_to(bits: u64, sty: STy) -> u64 {
    match sty.bits() {
        1 => bits & 1,
        8 => bits & 0xFF,
        16 => bits & 0xFFFF,
        32 => bits & 0xFFFF_FFFF,
        _ => bits,
    }
}

/// Sign-extend the `sty`-width value in `bits` to i64.
#[inline]
pub(crate) fn sext(bits: u64, sty: STy) -> i64 {
    match sty.bits() {
        1 => {
            if bits & 1 != 0 {
                -1
            } else {
                0
            }
        }
        8 => bits as u8 as i8 as i64,
        16 => bits as u16 as i16 as i64,
        32 => bits as u32 as i32 as i64,
        _ => bits as i64,
    }
}

#[inline]
pub(crate) fn encode_imm(v: Value, sty: STy) -> u64 {
    match v {
        Value::ImmI(i) => mask_to(i as u64, sty),
        Value::ImmF(x) => match sty {
            STy::F32 => (x as f32).to_bits() as u64,
            STy::F64 => x.to_bits(),
            _ => mask_to(x as i64 as u64, sty),
        },
        Value::Reg(_) => unreachable!("encode_imm called on a register"),
    }
}

#[inline]
pub(crate) fn f_of(bits: u64, sty: STy) -> f64 {
    match sty {
        STy::F32 => f32::from_bits(bits as u32) as f64,
        STy::F64 => f64::from_bits(bits),
        _ => unreachable!("f_of on integer type"),
    }
}

#[inline]
pub(crate) fn f_enc(v: f64, sty: STy) -> u64 {
    match sty {
        STy::F32 => (v as f32).to_bits() as u64,
        STy::F64 => v.to_bits(),
        _ => unreachable!("f_enc on integer type"),
    }
}

pub(crate) fn scalar_bin(
    op: BinOp,
    sty: STy,
    signed: bool,
    a: u64,
    b: u64,
) -> Result<u64, VmError> {
    if sty.is_float() {
        let (x, y) = (f_of(a, sty), f_of(b, sty));
        let r = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            BinOp::And | BinOp::Or | BinOp::Xor => {
                let r = match op {
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    _ => a ^ b,
                };
                return Ok(mask_to(r, sty));
            }
            other => {
                return Err(VmError::Unsupported(format!("{other:?} on float type")));
            }
        };
        return Ok(f_enc(r, sty));
    }
    let bits = sty.bits().max(1);
    let shift_mask = (bits - 1).max(1) as u64;
    let r: u64 = match op {
        BinOp::Add => (sext(a, sty).wrapping_add(sext(b, sty))) as u64,
        BinOp::Sub => (sext(a, sty).wrapping_sub(sext(b, sty))) as u64,
        BinOp::Mul => (sext(a, sty).wrapping_mul(sext(b, sty))) as u64,
        BinOp::MulHi => {
            if signed {
                let p = (sext(a, sty) as i128) * (sext(b, sty) as i128);
                (p >> bits) as u64
            } else {
                let p = (mask_to(a, sty) as u128) * (mask_to(b, sty) as u128);
                (p >> bits) as u64
            }
        }
        BinOp::Div => {
            if mask_to(b, sty) == 0 {
                return Err(VmError::DivisionByZero);
            }
            if signed {
                sext(a, sty).wrapping_div(sext(b, sty)) as u64
            } else {
                mask_to(a, sty) / mask_to(b, sty)
            }
        }
        BinOp::Rem => {
            if mask_to(b, sty) == 0 {
                return Err(VmError::DivisionByZero);
            }
            if signed {
                sext(a, sty).wrapping_rem(sext(b, sty)) as u64
            } else {
                mask_to(a, sty) % mask_to(b, sty)
            }
        }
        BinOp::Min => {
            if signed {
                sext(a, sty).min(sext(b, sty)) as u64
            } else {
                mask_to(a, sty).min(mask_to(b, sty))
            }
        }
        BinOp::Max => {
            if signed {
                sext(a, sty).max(sext(b, sty)) as u64
            } else {
                mask_to(a, sty).max(mask_to(b, sty))
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => mask_to(a, sty) << (b & shift_mask),
        BinOp::Shr => {
            if signed {
                (sext(a, sty) >> (b & shift_mask)) as u64
            } else {
                mask_to(a, sty) >> (b & shift_mask)
            }
        }
    };
    Ok(mask_to(r, sty))
}

pub(crate) fn scalar_un(op: UnOp, sty: STy, a: u64) -> Result<u64, VmError> {
    if sty.is_float() {
        let x = f_of(a, sty);
        let r = match op {
            UnOp::Neg => -x,
            UnOp::Abs => x.abs(),
            UnOp::Sqrt => x.sqrt(),
            UnOp::Rsqrt => 1.0 / x.sqrt(),
            UnOp::Rcp => 1.0 / x,
            UnOp::Sin => x.sin(),
            UnOp::Cos => x.cos(),
            UnOp::Ex2 => x.exp2(),
            UnOp::Lg2 => x.log2(),
            UnOp::Not => return Err(VmError::Unsupported("not on float".into())),
        };
        return Ok(f_enc(r, sty));
    }
    let r = match op {
        UnOp::Neg => sext(a, sty).wrapping_neg() as u64,
        UnOp::Not => {
            if sty == STy::I1 {
                (a & 1) ^ 1
            } else {
                !a
            }
        }
        UnOp::Abs => sext(a, sty).wrapping_abs() as u64,
        other => return Err(VmError::Unsupported(format!("{other:?} on integer type"))),
    };
    Ok(mask_to(r, sty))
}

pub(crate) fn scalar_cmp(pred: CmpPred, sty: STy, signed: bool, a: u64, b: u64) -> u64 {
    let r = if sty.is_float() {
        let (x, y) = (f_of(a, sty), f_of(b, sty));
        match pred {
            CmpPred::Eq => x == y,
            CmpPred::Ne => x != y,
            CmpPred::Lt => x < y,
            CmpPred::Le => x <= y,
            CmpPred::Gt => x > y,
            CmpPred::Ge => x >= y,
        }
    } else if signed {
        let (x, y) = (sext(a, sty), sext(b, sty));
        match pred {
            CmpPred::Eq => x == y,
            CmpPred::Ne => x != y,
            CmpPred::Lt => x < y,
            CmpPred::Le => x <= y,
            CmpPred::Gt => x > y,
            CmpPred::Ge => x >= y,
        }
    } else {
        let (x, y) = (mask_to(a, sty), mask_to(b, sty));
        match pred {
            CmpPred::Eq => x == y,
            CmpPred::Ne => x != y,
            CmpPred::Lt => x < y,
            CmpPred::Le => x <= y,
            CmpPred::Gt => x > y,
            CmpPred::Ge => x >= y,
        }
    };
    r as u64
}

pub(crate) fn scalar_cvt(to: STy, from: STy, signed: bool, a: u64) -> u64 {
    if from.is_float() {
        let x = f_of(a, from);
        if to.is_float() {
            f_enc(x, to)
        } else if signed {
            mask_to((x as i64) as u64, to)
        } else {
            mask_to(x as u64, to)
        }
    } else {
        let v: i64 = if signed { sext(a, from) } else { mask_to(a, from) as i64 };
        if to.is_float() {
            if signed {
                f_enc(v as f64, to)
            } else {
                f_enc((v as u64) as f64, to)
            }
        } else {
            mask_to(v as u64, to)
        }
    }
}

/// A resolved operand: a register's slot range in the flat frame, or an
/// encoded immediate. Copy-sized, so operands resolve once per
/// instruction and lane reads are a single indexed load.
#[derive(Clone, Copy)]
enum Src {
    Reg { off: usize, w: usize },
    Imm(u64),
}

struct Machine<'a, 'm> {
    f: &'a Function,
    layout: &'a FrameLayout,
    regs: &'a mut [u64],
    ctxs: &'a mut [ThreadContext],
    entry_id: i64,
    mem: &'a mut MemAccess<'m>,
}

impl<'a, 'm> Machine<'a, 'm> {
    #[inline]
    fn src(&self, v: Value, sty: STy) -> Src {
        match v {
            Value::Reg(r) => Src::Reg { off: self.layout.offset(r), w: self.layout.width(r) },
            imm => Src::Imm(encode_imm(imm, sty)),
        }
    }

    /// Lane `i` of a resolved operand. Width-1 registers broadcast, the
    /// flat-frame equivalent of the old scalar-value read broadcast.
    #[inline]
    fn lane(&self, s: Src, i: usize) -> u64 {
        match s {
            Src::Reg { off, w } => self.regs[off + if w == 1 { 0 } else { i }],
            Src::Imm(b) => b,
        }
    }

    #[inline]
    fn eval_scalar(&self, v: Value, sty: STy) -> u64 {
        match v {
            Value::Reg(r) => self.regs[self.layout.offset(r)],
            imm => encode_imm(imm, sty),
        }
    }

    /// Write a scalar result, broadcast across the register's declared
    /// width so later vector-lane reads see the value in every lane.
    #[inline]
    fn set_scalar(&mut self, r: dpvk_ir::VReg, v: u64) {
        let off = self.layout.offset(r);
        let w = self.layout.width(r);
        self.regs[off..off + w].fill(v);
    }

    /// In-place lane-wise writes are alias-safe: output lane `i` depends
    /// only on operand lane `i`, which is read before it is overwritten,
    /// and distinct registers occupy disjoint slot ranges.
    fn elementwise2(
        &mut self,
        ty: Type,
        dst: dpvk_ir::VReg,
        a: Value,
        b: Value,
        f: impl Fn(u64, u64) -> Result<u64, VmError>,
    ) -> Result<(), VmError> {
        let sa = self.src(a, ty.scalar);
        let sb = self.src(b, ty.scalar);
        if ty.is_vector() {
            let doff = self.layout.offset(dst);
            debug_assert_eq!(self.layout.width(dst), ty.width as usize);
            for i in 0..ty.width as usize {
                let r = f(self.lane(sa, i), self.lane(sb, i))?;
                self.regs[doff + i] = r;
            }
        } else {
            let r = f(self.lane(sa, 0), self.lane(sb, 0))?;
            self.set_scalar(dst, r);
        }
        Ok(())
    }

    fn exec_inst(&mut self, inst: &Inst) -> Result<(), VmError> {
        use Inst::*;
        match inst {
            Bin { op, ty, signed, dst, a, b } => {
                let (op, sty, sg) = (*op, ty.scalar, *signed);
                self.elementwise2(*ty, *dst, *a, *b, move |x, y| scalar_bin(op, sty, sg, x, y))
            }
            Un { op, ty, dst, a } => {
                let sa = self.src(*a, ty.scalar);
                if ty.is_vector() {
                    let doff = self.layout.offset(*dst);
                    for i in 0..ty.width as usize {
                        let r = scalar_un(*op, ty.scalar, self.lane(sa, i))?;
                        self.regs[doff + i] = r;
                    }
                } else {
                    let r = scalar_un(*op, ty.scalar, self.lane(sa, 0))?;
                    self.set_scalar(*dst, r);
                }
                Ok(())
            }
            Fma { ty, dst, a, b, c } => {
                let sa = self.src(*a, ty.scalar);
                let sb = self.src(*b, ty.scalar);
                let sc = self.src(*c, ty.scalar);
                let sty = ty.scalar;
                let one = |x: u64, y: u64, z: u64| -> u64 {
                    if sty.is_float() {
                        f_enc(f_of(x, sty).mul_add(f_of(y, sty), f_of(z, sty)), sty)
                    } else {
                        let r = sext(x, sty).wrapping_mul(sext(y, sty)).wrapping_add(sext(z, sty));
                        mask_to(r as u64, sty)
                    }
                };
                if ty.is_vector() {
                    let doff = self.layout.offset(*dst);
                    for i in 0..ty.width as usize {
                        let r = one(self.lane(sa, i), self.lane(sb, i), self.lane(sc, i));
                        self.regs[doff + i] = r;
                    }
                } else {
                    let r = one(self.lane(sa, 0), self.lane(sb, 0), self.lane(sc, 0));
                    self.set_scalar(*dst, r);
                }
                Ok(())
            }
            Cmp { pred, ty, signed, dst, a, b } => {
                let (p, sty, sg) = (*pred, ty.scalar, *signed);
                self.elementwise2(*ty, *dst, *a, *b, move |x, y| Ok(scalar_cmp(p, sty, sg, x, y)))
            }
            Select { ty, dst, cond, a, b } => {
                let sc = self.src(*cond, STy::I1);
                let sa = self.src(*a, ty.scalar);
                let sb = self.src(*b, ty.scalar);
                if ty.is_vector() {
                    let doff = self.layout.offset(*dst);
                    for i in 0..ty.width as usize {
                        let r = if self.lane(sc, i) & 1 != 0 {
                            self.lane(sa, i)
                        } else {
                            self.lane(sb, i)
                        };
                        self.regs[doff + i] = r;
                    }
                } else {
                    let r =
                        if self.lane(sc, 0) & 1 != 0 { self.lane(sa, 0) } else { self.lane(sb, 0) };
                    self.set_scalar(*dst, r);
                }
                Ok(())
            }
            Cvt { to, from, signed, width, dst, a } => {
                let sa = self.src(*a, *from);
                if *width > 1 {
                    let doff = self.layout.offset(*dst);
                    for i in 0..*width as usize {
                        let r = scalar_cvt(*to, *from, *signed, self.lane(sa, i));
                        self.regs[doff + i] = r;
                    }
                } else {
                    let r = scalar_cvt(*to, *from, *signed, self.lane(sa, 0));
                    self.set_scalar(*dst, r);
                }
                Ok(())
            }
            Load { ty, space, dst, addr } => {
                let a = self.eval_scalar(*addr, STy::I64);
                let bits = self.mem.read(*space, a, ty.size_bytes())?;
                self.set_scalar(*dst, mask_to(bits, *ty));
                Ok(())
            }
            Store { ty, space, addr, value } => {
                let a = self.eval_scalar(*addr, STy::I64);
                let v = self.eval_scalar(*value, *ty);
                self.mem.write(*space, a, ty.size_bytes(), v)
            }
            Atom { ty, space, op, signed, dst, addr, a, b } => {
                let addr_v = self.eval_scalar(*addr, STy::I64);
                let av = self.eval_scalar(*a, *ty);
                let bv = b.map(|b| self.eval_scalar(b, *ty));
                let old = self.exec_atom(*ty, *space, *op, *signed, addr_v, av, bv)?;
                self.set_scalar(*dst, mask_to(old, *ty));
                Ok(())
            }
            Insert { ty, dst, vec, elem, lane } => {
                let e = self.eval_scalar(*elem, ty.scalar);
                let doff = self.layout.offset(*dst);
                match vec {
                    // In-place insert: the other lanes are already there.
                    Value::Reg(r) if r.index() == dst.index() => {}
                    v => {
                        let s = self.src(*v, ty.scalar);
                        for i in 0..ty.width as usize {
                            let x = self.lane(s, i);
                            self.regs[doff + i] = x;
                        }
                    }
                }
                self.regs[doff + *lane as usize] = e;
                Ok(())
            }
            Extract { ty, dst, vec, lane } => {
                let s = self.src(*vec, ty.scalar);
                let v = self.lane(s, *lane as usize);
                self.set_scalar(*dst, v);
                Ok(())
            }
            Splat { ty, dst, a } => {
                let s = self.eval_scalar(*a, ty.scalar);
                self.set_scalar(*dst, s);
                Ok(())
            }
            Reduce { op, ty, dst, vec } => {
                let s = self.src(*vec, ty.scalar);
                let w = ty.width as usize;
                let r = match op {
                    ReduceOp::Add => {
                        let mut sum: u64 = 0;
                        for i in 0..w {
                            sum = sum.wrapping_add(mask_to(self.lane(s, i), ty.scalar));
                        }
                        mask_to(sum, STy::I32)
                    }
                    ReduceOp::All => (0..w).all(|i| self.lane(s, i) & 1 != 0) as u64,
                    ReduceOp::Any => (0..w).any(|i| self.lane(s, i) & 1 != 0) as u64,
                };
                self.set_scalar(*dst, r);
                Ok(())
            }
            CtxRead { field, lane, dst } => {
                let li = *lane as usize;
                let ctx = &self.ctxs[li.min(self.ctxs.len() - 1)];
                let v: u64 = match field {
                    CtxField::Tid(d) => ctx.tid[*d as usize] as u64,
                    CtxField::Ntid(d) => ctx.ntid[*d as usize] as u64,
                    CtxField::Ctaid(d) => ctx.ctaid[*d as usize] as u64,
                    CtxField::Nctaid(d) => ctx.nctaid[*d as usize] as u64,
                    CtxField::LocalBase => ctx.local_base,
                    CtxField::LaneId => *lane as u64,
                    CtxField::WarpSize => self.f.warp_size as u64,
                    CtxField::EntryId => mask_to(self.entry_id as u64, STy::I32),
                };
                self.set_scalar(*dst, v);
                Ok(())
            }
            SetResumePoint { lane, value } => {
                let bits = self.eval_scalar(*value, STy::I32);
                let id = match value {
                    Value::Reg(r) => sext(bits, self.f.reg_type(*r).scalar),
                    Value::ImmI(i) => *i,
                    Value::ImmF(_) => {
                        return Err(VmError::Unsupported("float resume point".into()))
                    }
                };
                self.ctxs[*lane as usize].resume_point = id;
                Ok(())
            }
            SetResumeStatus { .. } => Ok(()), // handled by the caller loop
            Vote { dst, a, .. } => {
                // Scalar (width-1) semantics: the warp is this one thread.
                let v = self.eval_scalar(*a, STy::I1);
                self.set_scalar(*dst, v & 1);
                Ok(())
            }
            Mov { ty, dst, a } => {
                if ty.is_vector() {
                    let s = self.src(*a, ty.scalar);
                    let doff = self.layout.offset(*dst);
                    for i in 0..ty.width as usize {
                        let v = self.lane(s, i);
                        self.regs[doff + i] = v;
                    }
                } else {
                    let v = self.eval_scalar(*a, ty.scalar);
                    self.set_scalar(*dst, v);
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_atom(
        &mut self,
        ty: STy,
        space: dpvk_ir::Space,
        op: AtomKind,
        signed: bool,
        addr: u64,
        a: u64,
        b: Option<u64>,
    ) -> Result<u64, VmError> {
        atom_rmw(self.mem, ty, space, op, signed, addr, a, b)
    }
}

/// Atomic read-modify-write shared by both interpreter engines. Within
/// one execution manager the CTA's threads are serialized, so shared and
/// local RMWs are plain read/modify/write; global ones go through the
/// lock-free cells of [`crate::GlobalMem`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn atom_rmw(
    mem: &mut MemAccess<'_>,
    ty: STy,
    space: dpvk_ir::Space,
    op: AtomKind,
    signed: bool,
    addr: u64,
    a: u64,
    b: Option<u64>,
) -> Result<u64, VmError> {
    let apply = move |old: u64| -> u64 {
        match op {
            AtomKind::Add => {
                if ty.is_float() {
                    f_enc(f_of(old, ty) + f_of(a, ty), ty)
                } else {
                    mask_to(old.wrapping_add(a), ty)
                }
            }
            AtomKind::Min => {
                if ty.is_float() {
                    f_enc(f_of(old, ty).min(f_of(a, ty)), ty)
                } else if signed {
                    mask_to(sext(old, ty).min(sext(a, ty)) as u64, ty)
                } else {
                    mask_to(mask_to(old, ty).min(mask_to(a, ty)), ty)
                }
            }
            AtomKind::Max => {
                if ty.is_float() {
                    f_enc(f_of(old, ty).max(f_of(a, ty)), ty)
                } else if signed {
                    mask_to(sext(old, ty).max(sext(a, ty)) as u64, ty)
                } else {
                    mask_to(mask_to(old, ty).max(mask_to(a, ty)), ty)
                }
            }
            AtomKind::Exch => mask_to(a, ty),
            AtomKind::Cas => {
                if mask_to(old, ty) == mask_to(a, ty) {
                    mask_to(b.unwrap_or(0), ty)
                } else {
                    old
                }
            }
        }
    };
    match space {
        dpvk_ir::Space::Global => match ty.size_bytes() {
            4 => Ok(mem.global.atomic_rmw_u32(addr, |v| apply(v as u64) as u32)? as u64),
            8 => mem.global.atomic_rmw_u64(addr, apply),
            n => Err(VmError::Unsupported(format!("{n}-byte atomic"))),
        },
        dpvk_ir::Space::Shared | dpvk_ir::Space::Local => {
            // Within one execution manager the CTA's threads are
            // serialized, so a plain read-modify-write is atomic.
            let old = mem.read(space, addr, ty.size_bytes())?;
            let new = apply(old);
            mem.write(space, addr, ty.size_bytes(), new)?;
            Ok(old)
        }
        other => Err(VmError::Unsupported(format!("atomic in {other:?} space"))),
    }
}

/// Execute one warp through `f`, starting at `entry_id`.
///
/// `ctxs` must contain exactly `f.warp_size` contexts, all waiting at the
/// same entry point. On return their `resume_point` fields have been
/// updated by the kernel's exit handlers (for scalar `Ret` without an
/// explicit status the warp is treated as terminated).
///
/// # Errors
///
/// Returns a [`VmError`] on memory faults, division by zero, when the
/// instruction watchdog trips, when the wall-clock deadline passes, or
/// when `cancel` is cancelled (the latter two are polled every
/// [`ExecLimits::check_interval`] instructions).
///
/// # Panics
///
/// Panics if `ctxs.len() != f.warp_size`.
#[allow(clippy::too_many_arguments)]
pub fn execute_warp(
    f: &Function,
    info: &CostInfo,
    model: &MachineModel,
    ctxs: &mut [ThreadContext],
    entry_id: i64,
    mem: &mut MemAccess<'_>,
    stats: &mut ExecStats,
    limits: &ExecLimits,
    cancel: Option<&CancelToken>,
) -> Result<WarpOutcome, VmError> {
    let layout = FrameLayout::of(f);
    let mut scratch = RegFrame::new();
    execute_warp_framed(
        f,
        &layout,
        &mut scratch,
        info,
        model,
        ctxs,
        entry_id,
        mem,
        stats,
        limits,
        cancel,
    )
}

/// [`execute_warp`] with a precomputed [`FrameLayout`] and a reusable
/// [`RegFrame`]: the steady-state entry point of the execution manager.
/// `layout` must be the layout of `f` (compute it once at compile time
/// and cache it alongside the function); `scratch` may be shared across
/// calls and functions — it is zeroed and resized here, which allocates
/// nothing once the frame has grown to the largest layout it serves.
///
/// Errors and panics are those of [`execute_warp`].
#[allow(clippy::too_many_arguments)]
pub fn execute_warp_framed(
    f: &Function,
    layout: &FrameLayout,
    scratch: &mut RegFrame,
    info: &CostInfo,
    model: &MachineModel,
    ctxs: &mut [ThreadContext],
    entry_id: i64,
    mem: &mut MemAccess<'_>,
    stats: &mut ExecStats,
    limits: &ExecLimits,
    cancel: Option<&CancelToken>,
) -> Result<WarpOutcome, VmError> {
    assert_eq!(
        ctxs.len(),
        f.warp_size as usize,
        "warp size mismatch: {} contexts for a width-{} function",
        ctxs.len(),
        f.warp_size
    );
    debug_assert_eq!(layout.regs(), f.regs.len(), "frame layout does not match the function");
    let regs = scratch.prepare(layout);
    let mut m = Machine { f, layout, regs, ctxs, entry_id, mem };
    let mut cur = dpvk_ir::BlockId(0);
    let mut status: Option<ResumeStatus> = None;
    let mut executed: u64 = 0;
    // Deadline/cancellation are polled on a stride so the common
    // unlimited case pays one branch per instruction, never a clock read.
    let poll_stride = limits.check_interval.max(1);
    let polling = limits.deadline.is_some() || cancel.is_some();
    let mut next_poll = poll_stride;

    stats.warp_entries += 1;
    stats.thread_entries += f.warp_size as u64;

    loop {
        let block = f.block(cur);
        let is_overhead = !matches!(block.kind, BlockKind::Body);
        let mut cycles: u64 = 0;
        for inst in &block.insts {
            executed += 1;
            if executed > limits.max_instructions {
                return Err(VmError::Watchdog { limit: limits.max_instructions });
            }
            if polling && executed >= next_poll {
                next_poll = executed + poll_stride;
                if let Some(token) = cancel {
                    if token.is_cancelled() {
                        return Err(VmError::Cancelled);
                    }
                }
                if let Some(deadline) = limits.deadline {
                    if Instant::now() >= deadline {
                        return Err(VmError::Deadline);
                    }
                }
            }
            cycles += inst_cost(inst, model, info);
            stats.flops += inst_flops(inst);
            match inst {
                Inst::Load { ty, .. } => {
                    stats.loads += 1;
                    if block.kind == BlockKind::EntryHandler {
                        stats.restore_loads += 1;
                        stats.restore_bytes += ty.size_bytes() as u64;
                    }
                }
                Inst::Store { ty, .. } => {
                    stats.stores += 1;
                    if block.kind == BlockKind::ExitHandler {
                        stats.spill_stores += 1;
                        stats.spill_bytes += ty.size_bytes() as u64;
                    }
                }
                Inst::SetResumeStatus { status: s } => {
                    status = Some(*s);
                }
                _ => {}
            }
            m.exec_inst(inst)?;
        }
        cycles += term_cost(&block.term);
        executed += 1;
        if executed > limits.max_instructions {
            return Err(VmError::Watchdog { limit: limits.max_instructions });
        }
        // Terminators count too: a block with no instructions (a pure
        // branch loop) must still hit the deadline/cancellation poll.
        if polling && executed >= next_poll {
            next_poll = executed + poll_stride;
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    return Err(VmError::Cancelled);
                }
            }
            if let Some(deadline) = limits.deadline {
                if Instant::now() >= deadline {
                    return Err(VmError::Deadline);
                }
            }
        }
        stats.instructions += block.insts.len() as u64 + 1;
        if is_overhead {
            stats.cycles_yield += cycles;
        } else {
            stats.cycles_body += cycles;
        }
        match &block.term {
            Term::Br(b) => cur = *b,
            Term::CondBr { cond, taken, fall } => {
                let c = m.eval_scalar(*cond, STy::I1);
                cur = if c & 1 != 0 { *taken } else { *fall };
            }
            Term::Switch { value, cases, default } => {
                let bits = m.eval_scalar(*value, STy::I64);
                let v = match value {
                    Value::Reg(r) => sext(bits, f.reg_type(*r).scalar),
                    Value::ImmI(i) => *i,
                    Value::ImmF(_) => return Err(VmError::Unsupported("float switch".into())),
                };
                cur =
                    cases.iter().find(|(case, _)| *case == v).map(|(_, b)| *b).unwrap_or(*default);
            }
            Term::Ret => {
                let status = status.unwrap_or(ResumeStatus::Exit);
                if status == ResumeStatus::Exit {
                    for c in m.ctxs.iter_mut() {
                        c.resume_point = dpvk_ir::EXIT_ENTRY_ID;
                    }
                }
                return Ok(WarpOutcome { status });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::GlobalMem;
    use dpvk_ir::{Block, BlockId};

    fn run(
        f: &Function,
        global: &GlobalMem,
        param: &[u8],
    ) -> (WarpOutcome, ExecStats, Vec<ThreadContext>) {
        let model = MachineModel::default();
        let info = CostInfo::analyze(f, &model);
        let mut ctxs: Vec<ThreadContext> = (0..f.warp_size)
            .map(|i| ThreadContext::new([i, 0, 0], [f.warp_size, 1, 1], [0; 3], [1, 1, 1]))
            .collect();
        let mut shared = vec![0u8; 1024];
        let mut local = vec![0u8; 4096];
        for (i, c) in ctxs.iter_mut().enumerate() {
            c.local_base = (i * 1024) as u64;
        }
        let mut mem =
            MemAccess { global, shared: &mut shared, local: &mut local, param, cbank: &[] };
        let mut stats = ExecStats::default();
        let out = execute_warp(
            f,
            &info,
            &model,
            &mut ctxs,
            0,
            &mut mem,
            &mut stats,
            &ExecLimits::default(),
            None,
        )
        .unwrap();
        (out, stats, ctxs)
    }

    #[test]
    fn scalar_arith_and_store() {
        // Compute 6*7+4 and store to global[0].
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I32);
        let a = f.new_reg(t);
        let mut b = Block::new("entry");
        b.insts.push(Inst::Fma {
            ty: t,
            dst: a,
            a: Value::ImmI(6),
            b: Value::ImmI(7),
            c: Value::ImmI(4),
        });
        b.insts.push(Inst::Store {
            ty: STy::I32,
            space: dpvk_ir::Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(a),
        });
        b.term = Term::Ret;
        f.add_block(b);
        let g = GlobalMem::new(16);
        let (out, stats, ctxs) = run(&f, &g, &[]);
        assert_eq!(out.status, ResumeStatus::Exit);
        assert_eq!(u32::from_le_bytes(g.read::<4>(0).unwrap()), 46);
        assert!(stats.cycles_body > 0);
        assert!(ctxs[0].is_terminated());
    }

    #[test]
    fn vector_fma_f32() {
        let mut f = Function::new("t", 4);
        let vt = Type::vector(STy::F32, 4);
        let v = f.new_reg(vt);
        let e = f.new_reg(Type::scalar(STy::F32));
        let mut b = Block::new("entry");
        b.insts.push(Inst::Splat { ty: vt, dst: v, a: Value::ImmF(2.0) });
        b.insts.push(Inst::Fma {
            ty: vt,
            dst: v,
            a: Value::Reg(v),
            b: Value::Reg(v),
            c: Value::Reg(v),
        });
        b.insts.push(Inst::Extract { ty: vt, dst: e, vec: Value::Reg(v), lane: 3 });
        b.insts.push(Inst::Store {
            ty: STy::F32,
            space: dpvk_ir::Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(e),
        });
        b.term = Term::Ret;
        f.add_block(b);
        let g = GlobalMem::new(16);
        let (_, stats, _) = run(&f, &g, &[]);
        assert_eq!(f32::from_bits(u32::from_le_bytes(g.read::<4>(0).unwrap())), 6.0);
        assert_eq!(stats.flops, 8); // one 4-wide FMA
    }

    #[test]
    fn loop_with_condbr() {
        // Sum 0..10 into global[0].
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I32);
        let i = f.new_reg(t);
        let acc = f.new_reg(t);
        let p = f.new_reg(Type::scalar(STy::I1));
        let mut entry = Block::new("entry");
        entry.insts.push(Inst::Mov { ty: t, dst: i, a: Value::ImmI(0) });
        entry.insts.push(Inst::Mov { ty: t, dst: acc, a: Value::ImmI(0) });
        let mut head = Block::new("head");
        head.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: t,
            signed: false,
            dst: acc,
            a: Value::Reg(acc),
            b: Value::Reg(i),
        });
        head.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: t,
            signed: false,
            dst: i,
            a: Value::Reg(i),
            b: Value::ImmI(1),
        });
        head.insts.push(Inst::Cmp {
            pred: CmpPred::Lt,
            ty: t,
            signed: true,
            dst: p,
            a: Value::Reg(i),
            b: Value::ImmI(10),
        });
        let mut tail = Block::new("tail");
        tail.insts.push(Inst::Store {
            ty: STy::I32,
            space: dpvk_ir::Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(acc),
        });
        tail.term = Term::Ret;
        let e = f.add_block(entry);
        let h = f.add_block(Block::new("p"));
        let tl = f.add_block(tail);
        head.term = Term::CondBr { cond: Value::Reg(p), taken: h, fall: tl };
        f.blocks[h.index()] = head;
        f.block_mut(e).term = Term::Br(h);
        let g = GlobalMem::new(16);
        run(&f, &g, &[]);
        assert_eq!(u32::from_le_bytes(g.read::<4>(0).unwrap()), 45);
    }

    #[test]
    fn switch_dispatch() {
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I32);
        let id = f.new_reg(t);
        let mut entry = Block::new("sched");
        entry.insts.push(Inst::CtxRead { field: CtxField::EntryId, lane: 0, dst: id });
        entry.term = Term::Switch {
            value: Value::Reg(id),
            cases: vec![(0, BlockId(1)), (5, BlockId(2))],
            default: BlockId(1),
        };
        f.add_block(entry);
        let mut b1 = Block::new("zero");
        b1.insts.push(Inst::Store {
            ty: STy::I32,
            space: dpvk_ir::Space::Global,
            addr: Value::ImmI(0),
            value: Value::ImmI(111),
        });
        b1.term = Term::Ret;
        f.add_block(b1);
        let mut b2 = Block::new("five");
        b2.insts.push(Inst::Store {
            ty: STy::I32,
            space: dpvk_ir::Space::Global,
            addr: Value::ImmI(0),
            value: Value::ImmI(222),
        });
        b2.term = Term::Ret;
        f.add_block(b2);

        let model = MachineModel::default();
        let info = CostInfo::analyze(&f, &model);
        let g = GlobalMem::new(16);
        let mut ctxs = vec![ThreadContext::new([0; 3], [1, 1, 1], [0; 3], [1, 1, 1])];
        let mut shared = vec![];
        let mut local = vec![];
        let mut mem = MemAccess {
            global: &g,
            shared: &mut shared,
            local: &mut local,
            param: &[],
            cbank: &[],
        };
        let mut stats = ExecStats::default();
        execute_warp(
            &f,
            &info,
            &model,
            &mut ctxs,
            5,
            &mut mem,
            &mut stats,
            &ExecLimits::default(),
            None,
        )
        .unwrap();
        assert_eq!(u32::from_le_bytes(g.read::<4>(0).unwrap()), 222);
    }

    #[test]
    fn resume_points_and_status() {
        let mut f = Function::new("t", 2);
        let mut b = Block::new("exit");
        b.kind = dpvk_ir::BlockKind::ExitHandler;
        b.insts.push(Inst::SetResumePoint { lane: 0, value: Value::ImmI(3) });
        b.insts.push(Inst::SetResumePoint { lane: 1, value: Value::ImmI(7) });
        b.insts.push(Inst::SetResumeStatus { status: ResumeStatus::Branch });
        b.term = Term::Ret;
        f.add_block(b);
        let g = GlobalMem::new(4);
        let (out, stats, ctxs) = run(&f, &g, &[]);
        assert_eq!(out.status, ResumeStatus::Branch);
        assert_eq!(ctxs[0].resume_point, 3);
        assert_eq!(ctxs[1].resume_point, 7);
        // Cycles landed in the yield bucket.
        assert!(stats.cycles_yield > 0);
        assert_eq!(stats.cycles_body, 0);
    }

    #[test]
    fn division_by_zero_traps() {
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I32);
        let a = f.new_reg(t);
        let mut b = Block::new("entry");
        b.insts.push(Inst::Bin {
            op: BinOp::Div,
            ty: t,
            signed: true,
            dst: a,
            a: Value::ImmI(1),
            b: Value::ImmI(0),
        });
        b.term = Term::Ret;
        f.add_block(b);
        let model = MachineModel::default();
        let info = CostInfo::zero();
        let g = GlobalMem::new(4);
        let mut ctxs = vec![ThreadContext::new([0; 3], [1, 1, 1], [0; 3], [1, 1, 1])];
        let mut shared = vec![];
        let mut local = vec![];
        let mut mem = MemAccess {
            global: &g,
            shared: &mut shared,
            local: &mut local,
            param: &[],
            cbank: &[],
        };
        let mut stats = ExecStats::default();
        let err = execute_warp(
            &f,
            &info,
            &model,
            &mut ctxs,
            0,
            &mut mem,
            &mut stats,
            &ExecLimits::default(),
            None,
        )
        .unwrap_err();
        assert_eq!(err, VmError::DivisionByZero);
    }

    #[test]
    fn watchdog_catches_infinite_loop() {
        let mut f = Function::new("t", 1);
        let mut b = Block::new("spin");
        b.term = Term::Br(BlockId(0));
        f.add_block(b);
        let model = MachineModel::default();
        let info = CostInfo::zero();
        let g = GlobalMem::new(4);
        let mut ctxs = vec![ThreadContext::new([0; 3], [1, 1, 1], [0; 3], [1, 1, 1])];
        let mut shared = vec![];
        let mut local = vec![];
        let mut mem = MemAccess {
            global: &g,
            shared: &mut shared,
            local: &mut local,
            param: &[],
            cbank: &[],
        };
        let mut stats = ExecStats::default();
        let limits = ExecLimits { max_instructions: 1000, ..Default::default() };
        let err =
            execute_warp(&f, &info, &model, &mut ctxs, 0, &mut mem, &mut stats, &limits, None)
                .unwrap_err();
        assert!(matches!(err, VmError::Watchdog { .. }));
    }

    /// An infinite-loop kernel plus fresh execution state, for the
    /// deadline and cancellation tests.
    fn spin_setup() -> (Function, MachineModel, CostInfo) {
        let mut f = Function::new("spin", 1);
        let mut b = Block::new("spin");
        b.term = Term::Br(BlockId(0));
        f.add_block(b);
        (f, MachineModel::default(), CostInfo::zero())
    }

    #[test]
    fn expired_deadline_stops_an_infinite_loop() {
        let (f, model, info) = spin_setup();
        let g = GlobalMem::new(4);
        let mut ctxs = vec![ThreadContext::new([0; 3], [1, 1, 1], [0; 3], [1, 1, 1])];
        let (mut shared, mut local) = (vec![], vec![]);
        let mut mem = MemAccess {
            global: &g,
            shared: &mut shared,
            local: &mut local,
            param: &[],
            cbank: &[],
        };
        let mut stats = ExecStats::default();
        let limits =
            ExecLimits { deadline: Some(Instant::now()), check_interval: 16, ..Default::default() };
        let err =
            execute_warp(&f, &info, &model, &mut ctxs, 0, &mut mem, &mut stats, &limits, None)
                .unwrap_err();
        assert_eq!(err, VmError::Deadline);
    }

    #[test]
    fn pre_cancelled_token_stops_an_infinite_loop() {
        let (f, model, info) = spin_setup();
        let g = GlobalMem::new(4);
        let mut ctxs = vec![ThreadContext::new([0; 3], [1, 1, 1], [0; 3], [1, 1, 1])];
        let (mut shared, mut local) = (vec![], vec![]);
        let mut mem = MemAccess {
            global: &g,
            shared: &mut shared,
            local: &mut local,
            param: &[],
            cbank: &[],
        };
        let mut stats = ExecStats::default();
        let token = CancelToken::new();
        token.cancel();
        let limits = ExecLimits { check_interval: 16, ..Default::default() };
        let err = execute_warp(
            &f,
            &info,
            &model,
            &mut ctxs,
            0,
            &mut mem,
            &mut stats,
            &limits,
            Some(&token),
        )
        .unwrap_err();
        assert_eq!(err, VmError::Cancelled);
    }

    #[test]
    fn uncancelled_token_and_future_deadline_do_not_interfere() {
        let mut f = Function::new("t", 1);
        let mut b = Block::new("entry");
        b.insts.push(Inst::Store {
            ty: STy::I32,
            space: dpvk_ir::Space::Global,
            addr: Value::ImmI(0),
            value: Value::ImmI(7),
        });
        b.term = Term::Ret;
        f.add_block(b);
        let model = MachineModel::default();
        let info = CostInfo::analyze(&f, &model);
        let g = GlobalMem::new(16);
        let mut ctxs = vec![ThreadContext::new([0; 3], [1, 1, 1], [0; 3], [1, 1, 1])];
        let (mut shared, mut local) = (vec![], vec![]);
        let mut mem = MemAccess {
            global: &g,
            shared: &mut shared,
            local: &mut local,
            param: &[],
            cbank: &[],
        };
        let mut stats = ExecStats::default();
        let token = CancelToken::new();
        let mut limits = ExecLimits::with_deadline(std::time::Duration::from_secs(60));
        limits.check_interval = 1;
        let out = execute_warp(
            &f,
            &info,
            &model,
            &mut ctxs,
            0,
            &mut mem,
            &mut stats,
            &limits,
            Some(&token),
        )
        .unwrap();
        assert_eq!(out.status, ResumeStatus::Exit);
        assert_eq!(u32::from_le_bytes(g.read::<4>(0).unwrap()), 7);
    }

    #[test]
    fn signed_and_unsigned_semantics() {
        assert_eq!(scalar_bin(BinOp::Shr, STy::I32, true, 0xFFFF_FFF0, 4).unwrap(), 0xFFFF_FFFF);
        assert_eq!(scalar_bin(BinOp::Shr, STy::I32, false, 0xFFFF_FFF0, 4).unwrap(), 0x0FFF_FFFF);
        assert_eq!(scalar_cmp(CmpPred::Lt, STy::I32, true, (-1i32) as u32 as u64, 0), 1);
        assert_eq!(scalar_cmp(CmpPred::Lt, STy::I32, false, (-1i32) as u32 as u64, 0), 0);
        assert_eq!(
            scalar_bin(BinOp::Min, STy::I32, true, (-5i32) as u32 as u64, 3).unwrap(),
            (-5i32) as u32 as u64
        );
    }

    #[test]
    fn conversions() {
        // f32 -> i32 truncation.
        let bits = (3.7f32).to_bits() as u64;
        assert_eq!(scalar_cvt(STy::I32, STy::F32, true, bits), 3);
        // negative float to signed int.
        let bits = (-2.5f32).to_bits() as u64;
        assert_eq!(scalar_cvt(STy::I32, STy::F32, true, bits) as u32 as i32, -2);
        // u32 -> f32.
        let r = scalar_cvt(STy::F32, STy::I32, false, 0xFFFF_FFFF);
        assert_eq!(f32::from_bits(r as u32), 4294967295.0f32);
        // sign extension i16 -> i32.
        assert_eq!(scalar_cvt(STy::I32, STy::I16, true, 0x8000) as u32, 0xFFFF_8000);
    }

    #[test]
    fn reduce_and_vote() {
        let mut f = Function::new("t", 1);
        let vt = Type::vector(STy::I1, 4);
        let v = f.new_reg(vt);
        let sum = f.new_reg(Type::scalar(STy::I32));
        let all = f.new_reg(Type::scalar(STy::I1));
        let any = f.new_reg(Type::scalar(STy::I1));
        let outv = f.new_reg(Type::scalar(STy::I32));
        let mut b = Block::new("entry");
        b.insts.push(Inst::Splat { ty: vt, dst: v, a: Value::ImmI(1) });
        b.insts.push(Inst::Insert {
            ty: vt,
            dst: v,
            vec: Value::Reg(v),
            elem: Value::ImmI(0),
            lane: 2,
        });
        b.insts.push(Inst::Reduce { op: ReduceOp::Add, ty: vt, dst: sum, vec: Value::Reg(v) });
        b.insts.push(Inst::Reduce { op: ReduceOp::All, ty: vt, dst: all, vec: Value::Reg(v) });
        b.insts.push(Inst::Reduce { op: ReduceOp::Any, ty: vt, dst: any, vec: Value::Reg(v) });
        b.insts.push(Inst::Store {
            ty: STy::I32,
            space: dpvk_ir::Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(sum),
        });
        b.insts.push(Inst::Cvt {
            to: STy::I32,
            from: STy::I1,
            signed: false,
            width: 1,
            dst: outv,
            a: Value::Reg(all),
        });
        b.insts.push(Inst::Store {
            ty: STy::I32,
            space: dpvk_ir::Space::Global,
            addr: Value::ImmI(4),
            value: Value::Reg(outv),
        });
        b.insts.push(Inst::Cvt {
            to: STy::I32,
            from: STy::I1,
            signed: false,
            width: 1,
            dst: outv,
            a: Value::Reg(any),
        });
        b.insts.push(Inst::Store {
            ty: STy::I32,
            space: dpvk_ir::Space::Global,
            addr: Value::ImmI(8),
            value: Value::Reg(outv),
        });
        b.term = Term::Ret;
        f.add_block(b);
        let g = GlobalMem::new(16);
        run(&f, &g, &[]);
        assert_eq!(u32::from_le_bytes(g.read::<4>(0).unwrap()), 3);
        assert_eq!(u32::from_le_bytes(g.read::<4>(4).unwrap()), 0);
        assert_eq!(u32::from_le_bytes(g.read::<4>(8).unwrap()), 1);
    }

    #[test]
    fn atomics_in_global_and_shared() {
        let mut f = Function::new("t", 1);
        let t = STy::I32;
        let old = f.new_reg(Type::scalar(STy::I32));
        let mut b = Block::new("entry");
        b.insts.push(Inst::Atom {
            ty: t,
            space: dpvk_ir::Space::Global,
            op: AtomKind::Add,
            signed: false,
            dst: old,
            addr: Value::ImmI(0),
            a: Value::ImmI(5),
            b: None,
        });
        b.insts.push(Inst::Atom {
            ty: t,
            space: dpvk_ir::Space::Shared,
            op: AtomKind::Max,
            signed: true,
            dst: old,
            addr: Value::ImmI(0),
            a: Value::ImmI(9),
            b: None,
        });
        b.term = Term::Ret;
        f.add_block(b);
        let g = GlobalMem::new(16);
        run(&f, &g, &[]);
        assert_eq!(u32::from_le_bytes(g.read::<4>(0).unwrap()), 5);
    }

    #[test]
    fn param_loads() {
        let mut f = Function::new("t", 1);
        let r = f.new_reg(Type::scalar(STy::I32));
        let mut b = Block::new("entry");
        b.insts.push(Inst::Load {
            ty: STy::I32,
            space: dpvk_ir::Space::Param,
            dst: r,
            addr: Value::ImmI(4),
        });
        b.insts.push(Inst::Store {
            ty: STy::I32,
            space: dpvk_ir::Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(r),
        });
        b.term = Term::Ret;
        f.add_block(b);
        let g = GlobalMem::new(16);
        let mut param = vec![0u8; 8];
        param[4..8].copy_from_slice(&99u32.to_le_bytes());
        run(&f, &g, &param);
        assert_eq!(u32::from_le_bytes(g.read::<4>(0).unwrap()), 99);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::memory::GlobalMem;
    use dpvk_ir::{Block, Space, VReg};

    fn exec_single(f: &Function, g: &GlobalMem) {
        let model = MachineModel::default();
        let info = CostInfo::analyze(f, &model);
        let mut ctxs: Vec<ThreadContext> = (0..f.warp_size)
            .map(|i| ThreadContext::new([i, 0, 0], [f.warp_size, 1, 1], [0; 3], [1, 1, 1]))
            .collect();
        let mut shared = vec![0u8; 256];
        let mut local = vec![0u8; 256];
        let mut mem =
            MemAccess { global: g, shared: &mut shared, local: &mut local, param: &[], cbank: &[] };
        let mut stats = ExecStats::default();
        execute_warp(
            f,
            &info,
            &model,
            &mut ctxs,
            0,
            &mut mem,
            &mut stats,
            &ExecLimits::default(),
            None,
        )
        .unwrap();
    }

    fn store32(f: &mut Function, b: &mut Block, addr: i64, v: VReg) {
        b.insts.push(Inst::Store {
            ty: STy::I32,
            space: Space::Global,
            addr: Value::ImmI(addr),
            value: Value::Reg(v),
        });
        let _ = f;
    }

    #[test]
    fn mulhi_signed_and_unsigned() {
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I32);
        let a = f.new_reg(t);
        let b_reg = f.new_reg(t);
        let mut b = Block::new("entry");
        // unsigned: 0xFFFFFFFF * 2 = 0x1_FFFF_FFFE -> hi = 1
        b.insts.push(Inst::Bin {
            op: BinOp::MulHi,
            ty: t,
            signed: false,
            dst: a,
            a: Value::ImmI(0xFFFF_FFFF),
            b: Value::ImmI(2),
        });
        // signed: -1 * 2 = -2 -> hi = -1 (0xFFFFFFFF)
        b.insts.push(Inst::Bin {
            op: BinOp::MulHi,
            ty: t,
            signed: true,
            dst: b_reg,
            a: Value::ImmI(-1),
            b: Value::ImmI(2),
        });
        store32(&mut f, &mut b, 0, a);
        store32(&mut f, &mut b, 4, b_reg);
        b.term = Term::Ret;
        f.add_block(b);
        let g = GlobalMem::new(16);
        exec_single(&f, &g);
        assert_eq!(u32::from_le_bytes(g.read::<4>(0).unwrap()), 1);
        assert_eq!(u32::from_le_bytes(g.read::<4>(4).unwrap()), 0xFFFF_FFFF);
    }

    #[test]
    fn vector_cvt_round_trips_lanes() {
        let mut f = Function::new("t", 4);
        let iv = Type::vector(STy::I32, 4);
        let fv = Type::vector(STy::F32, 4);
        let src = f.new_reg(iv);
        let dst = f.new_reg(fv);
        let e = f.new_reg(Type::scalar(STy::F32));
        let mut b = Block::new("entry");
        b.insts.push(Inst::Splat { ty: iv, dst: src, a: Value::ImmI(3) });
        b.insts.push(Inst::Insert {
            ty: iv,
            dst: src,
            vec: Value::Reg(src),
            elem: Value::ImmI(-7),
            lane: 2,
        });
        b.insts.push(Inst::Cvt {
            to: STy::F32,
            from: STy::I32,
            signed: true,
            width: 4,
            dst,
            a: Value::Reg(src),
        });
        b.insts.push(Inst::Extract { ty: fv, dst: e, vec: Value::Reg(dst), lane: 2 });
        b.insts.push(Inst::Store {
            ty: STy::F32,
            space: Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(e),
        });
        b.term = Term::Ret;
        f.add_block(b);
        let g = GlobalMem::new(16);
        exec_single(&f, &g);
        assert_eq!(f32::from_bits(u32::from_le_bytes(g.read::<4>(0).unwrap())), -7.0);
    }

    #[test]
    fn i64_arithmetic_full_width() {
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I64);
        let a = f.new_reg(t);
        let mut b = Block::new("entry");
        b.insts.push(Inst::Bin {
            op: BinOp::Mul,
            ty: t,
            signed: false,
            dst: a,
            a: Value::ImmI(0x1_0000_0001),
            b: Value::ImmI(0x10),
        });
        b.insts.push(Inst::Store {
            ty: STy::I64,
            space: Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(a),
        });
        b.term = Term::Ret;
        f.add_block(b);
        let g = GlobalMem::new(16);
        exec_single(&f, &g);
        assert_eq!(u64::from_le_bytes(g.read::<8>(0).unwrap()), 0x10_0000_0010);
    }

    #[test]
    fn f64_precision_is_preserved() {
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::F64);
        let a = f.new_reg(t);
        let mut b = Block::new("entry");
        b.insts.push(Inst::Bin {
            op: BinOp::Div,
            ty: t,
            signed: false,
            dst: a,
            a: Value::ImmF(1.0),
            b: Value::ImmF(3.0),
        });
        b.insts.push(Inst::Store {
            ty: STy::F64,
            space: Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(a),
        });
        b.term = Term::Ret;
        f.add_block(b);
        let g = GlobalMem::new(16);
        exec_single(&f, &g);
        assert_eq!(f64::from_bits(u64::from_le_bytes(g.read::<8>(0).unwrap())), 1.0 / 3.0);
    }

    #[test]
    fn narrow_memory_ops_mask_correctly() {
        let mut f = Function::new("t", 1);
        let a = f.new_reg(Type::scalar(STy::I32));
        let mut b = Block::new("entry");
        b.insts.push(Inst::Mov { ty: Type::scalar(STy::I32), dst: a, a: Value::ImmI(0x1234_5678) });
        b.insts.push(Inst::Store {
            ty: STy::I8,
            space: Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(a),
        });
        b.insts.push(Inst::Store {
            ty: STy::I16,
            space: Space::Global,
            addr: Value::ImmI(2),
            value: Value::Reg(a),
        });
        b.term = Term::Ret;
        f.add_block(b);
        let g = GlobalMem::new(16);
        exec_single(&f, &g);
        assert_eq!(g.read::<1>(0).unwrap()[0], 0x78);
        assert_eq!(u16::from_le_bytes(g.read::<2>(2).unwrap()), 0x5678);
        assert_eq!(g.read::<1>(1).unwrap()[0], 0); // byte store touched one byte
    }

    #[test]
    fn out_of_bounds_shared_access_reports_space() {
        let mut f = Function::new("t", 1);
        let a = f.new_reg(Type::scalar(STy::I32));
        let mut b = Block::new("entry");
        b.insts.push(Inst::Load {
            ty: STy::I32,
            space: Space::Shared,
            dst: a,
            addr: Value::ImmI(10_000),
        });
        b.term = Term::Ret;
        f.add_block(b);
        let model = MachineModel::default();
        let info = CostInfo::zero();
        let g = GlobalMem::new(16);
        let mut ctxs = vec![ThreadContext::new([0; 3], [1, 1, 1], [0; 3], [1, 1, 1])];
        let mut shared = vec![0u8; 64];
        let mut local = vec![];
        let mut mem = MemAccess {
            global: &g,
            shared: &mut shared,
            local: &mut local,
            param: &[],
            cbank: &[],
        };
        let mut stats = ExecStats::default();
        let err = execute_warp(
            &f,
            &info,
            &model,
            &mut ctxs,
            0,
            &mut mem,
            &mut stats,
            &ExecLimits::default(),
            None,
        )
        .unwrap_err();
        match err {
            VmError::OutOfBounds { space, space_size, .. } => {
                assert_eq!(space, Space::Shared);
                assert_eq!(space_size, 64);
            }
            other => panic!("expected OOB, got {other:?}"),
        }
    }
}
