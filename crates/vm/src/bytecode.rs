//! The pre-decoded linear bytecode engine: µop format and execution loop.
//!
//! The tree-walking interpreter in [`crate::interp`] re-resolves every
//! `Value::Reg`/`Value::Imm` operand through the [`FrameLayout`] and
//! recomputes the modeled instruction cost on every dynamic instruction.
//! This module executes a [`BytecodeProgram`] instead: a flat `Vec<Op>` of
//! fixed-size µops produced once per compiled specialization (see
//! [`crate::decode`]), with operands already resolved to frame-slot
//! offsets, immediates pre-encoded to their masked bit patterns, modeled
//! cycle/flop charges pre-baked per µop, and branch/switch targets
//! resolved to µop indices so the inner loop is one dense
//! `match code[pc]` dispatch.
//!
//! Vector-typed µops run through chunked `[u64; 4]` lanewise kernels with
//! the per-op dispatch hoisted out of the lane loop, giving the host
//! autovectorizer straight-line, branch-free bodies to widen — no SIMD
//! intrinsics or new dependencies involved.
//!
//! Everything observable is bit-identical to the tree-walk: lane values
//! funnel through the same scalar helpers, modeled cycles/flops charge
//! the same amounts in the same order, [`ExecStats`] fields and
//! watchdog/deadline/cancellation polls tick on exactly the same
//! instruction counts (terminators included, so pure-branch spin loops
//! still poll). The tree-walk stays as the differential oracle.
//!
//! [`FrameLayout`]: crate::frame::FrameLayout

use std::sync::Arc;
use std::time::Instant;

use dpvk_ir::{AtomKind, BinOp, CmpPred, CtxField, ReduceOp, ResumeStatus, STy, Space, UnOp};

use crate::cancel::CancelToken;
use crate::context::ThreadContext;
use crate::error::VmError;
use crate::frame::RegFrame;
use crate::interp::{
    atom_rmw, f_enc, f_of, mask_to, scalar_bin, scalar_cmp, scalar_cvt, scalar_un, sext,
    ExecLimits, WarpOutcome,
};
use crate::memory::MemAccess;
use crate::stats::ExecStats;

/// µop counts [`ExecStats::loads`].
pub(crate) const F_LOAD: u8 = 1 << 0;
/// µop also counts restore traffic (a load in an entry handler).
pub(crate) const F_RESTORE: u8 = 1 << 1;
/// µop counts [`ExecStats::stores`].
pub(crate) const F_STORE: u8 = 1 << 2;
/// µop also counts spill traffic (a store in an exit handler).
pub(crate) const F_SPILL: u8 = 1 << 3;

/// Pre-baked per-µop charges: modeled cycles, flops, and stat flags.
///
/// `inst_cost` is a pure function of the instruction, the machine model,
/// and the (per-function) cost analysis — all fixed at compile time — so
/// the decoder evaluates it once per static instruction instead of once
/// per dynamic one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct OpMeta {
    /// Modeled cycles charged when the µop issues.
    pub cost: u32,
    /// Modeled flops counted when the µop issues.
    pub flops: u32,
    /// `F_*` stat-attribution flags.
    pub flags: u8,
    /// Memory transfer size for spill/restore byte accounting.
    pub bytes: u8,
}

/// Block-retire charges carried by every terminator µop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TermInfo {
    /// Modeled cycles of the terminator.
    pub cost: u32,
    /// Dynamic instructions retired per block visit (`insts.len() + 1`).
    pub insts: u32,
    /// Charge the block's cycles to `cycles_yield` (non-`Body` block)
    /// instead of `cycles_body`.
    pub overhead: bool,
}

/// A resolved operand source. Reads are a single indexed load.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BSrc {
    /// Immediate, pre-encoded to its masked bit pattern.
    Imm(u64),
    /// Width-1 register slot; broadcasts across vector lanes.
    Slot(u32),
    /// Vector register: lane `i` reads slot `base + i`.
    Lanes(u32),
    /// The value produced by the previous component of a fused µop.
    Prev,
}

/// A resolved destination: scalar results broadcast-fill all `w` declared
/// slots (mirroring `Machine::set_scalar`); vector results write the
/// operation width starting at `off`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BDst {
    /// First slot of the register.
    pub off: u32,
    /// Declared lane width of the register.
    pub w: u32,
}

/// Switch scrutinee, resolved at decode time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SwitchVal {
    /// Register slot, sign-extended by the register's scalar type.
    Reg {
        /// Slot holding the value.
        slot: u32,
        /// Scalar type governing sign extension.
        sty: STy,
    },
    /// Integer immediate (used as-is).
    Imm(i64),
    /// A float immediate: errors at execution time exactly like the
    /// tree-walk does.
    BadFloat,
}

/// One fixed-size µop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    /// Charges applied when the µop (or its first fused component) issues.
    pub meta: OpMeta,
    /// Operation payload.
    pub kind: OpKind,
}

/// µop payloads. Straight-line µops advance `pc` by one; terminator µops
/// (and the fused compare-branch) retire the block and jump.
#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)]
pub(crate) enum OpKind {
    /// Element-wise binary operation.
    Bin { op: BinOp, sty: STy, signed: bool, w: u32, dst: BDst, a: BSrc, b: BSrc },
    /// Element-wise unary operation.
    Un { op: UnOp, sty: STy, w: u32, dst: BDst, a: BSrc },
    /// Fused multiply-add.
    Fma { sty: STy, w: u32, dst: BDst, a: BSrc, b: BSrc, c: BSrc },
    /// Comparison producing 0/1 lanes.
    Cmp { pred: CmpPred, sty: STy, signed: bool, w: u32, dst: BDst, a: BSrc, b: BSrc },
    /// Lane-wise select.
    Select { w: u32, dst: BDst, cond: BSrc, a: BSrc, b: BSrc },
    /// Type conversion.
    Cvt { to: STy, from: STy, signed: bool, w: u32, dst: BDst, a: BSrc },
    /// Scalar memory load.
    Load { sty: STy, space: Space, dst: BDst, addr: BSrc },
    /// Scalar memory store.
    Store { sty: STy, space: Space, addr: BSrc, value: BSrc },
    /// Atomic read-modify-write.
    Atom {
        sty: STy,
        space: Space,
        op: AtomKind,
        signed: bool,
        dst: BDst,
        addr: BSrc,
        a: BSrc,
        b: Option<BSrc>,
    },
    /// Lane insert; `vec: None` is the in-place form.
    Insert { w: u32, dst: BDst, vec: Option<BSrc>, elem: BSrc, lane: u32 },
    /// Lane extract.
    Extract { dst: BDst, vec: BSrc, lane: u32 },
    /// Broadcast a scalar into a vector register.
    Splat { dst: BDst, a: BSrc },
    /// Horizontal reduction.
    Reduce { op: ReduceOp, sty: STy, w: u32, dst: BDst, vec: BSrc },
    /// Thread-context field read.
    CtxRead { field: CtxField, lane: u32, dst: BDst },
    /// `SetResumePoint` with an immediate id.
    SetRpImm { lane: u32, id: i64 },
    /// `SetResumePoint` from a register, sign-extended by its type.
    SetRpReg { lane: u32, slot: u32, sty: STy },
    /// Record the warp's yield status.
    SetStatus { status: ResumeStatus },
    /// Width-1 vote (identity of the predicate).
    Vote { dst: BDst, a: BSrc },
    /// Vector register copy.
    MovVec { w: u32, off: u32, a: BSrc },
    /// Scalar register copy (broadcast write).
    MovScalar { dst: BDst, a: BSrc },
    /// A construct the tree-walk rejects at execution time; charged like
    /// the original instruction, then errors identically.
    Unsupported { what: &'static str },

    /// Fused scalar compare + conditional branch (superinstruction).
    /// `dst: None` when the predicate register has no other use.
    CmpBr {
        pred: CmpPred,
        sty: STy,
        signed: bool,
        a: BSrc,
        b: BSrc,
        dst: Option<BDst>,
        taken: u32,
        fall: u32,
        term: TermInfo,
    },
    /// Fused scalar `Bin`+`Bin` chain (FMA-shaped and address-arithmetic
    /// pairs); the second component reads the first through [`BSrc::Prev`].
    BinBin {
        op1: BinOp,
        sty1: STy,
        sg1: bool,
        a1: BSrc,
        b1: BSrc,
        dst1: Option<BDst>,
        op2: BinOp,
        sty2: STy,
        sg2: bool,
        a2: BSrc,
        b2: BSrc,
        dst2: BDst,
        meta2: OpMeta,
    },
    /// Fused scalar `Load`+`Bin` where the loaded value feeds the next
    /// instruction.
    LoadBin {
        sty1: STy,
        space: Space,
        addr: BSrc,
        dst1: Option<BDst>,
        op2: BinOp,
        sty2: STy,
        sg2: bool,
        a2: BSrc,
        b2: BSrc,
        dst2: BDst,
        meta2: OpMeta,
    },

    /// Fused register-copy run (superinstruction): component `i` copies
    /// slot `src + i*sstride` to slot `dst + i`. Covers `Extract` lane
    /// spreads, `Insert` packs (via `prefill`, replayed after the first
    /// element read and before its write, exactly like the first
    /// `Insert`'s initializer copy), and `MovScalar` fan-outs. One
    /// shared meta is charged per component, in original order.
    CopyRun { n: u32, src: u32, sstride: u32, dst: u32, prefill: Option<(BSrc, u32)> },
    /// Fused scalar-load run: `n` loads from consecutive address slots
    /// into consecutive destination slots. A faulting component leaves
    /// exactly the same register prefix written as the unfused form.
    LoadRun { n: u32, sty: STy, space: Space, addr: u32, dst: u32 },
    /// Fused `(Extract addr-lane, Store)` interleave — a vector
    /// scatter: per component, charge the extract (the run's own meta),
    /// materialize address lane `avec + i` into its temporary slot
    /// `atmp + i`, charge the store (`smeta`), write `val + i*vstride`
    /// to memory.
    StoreRun {
        n: u32,
        sty: STy,
        space: Space,
        avec: u32,
        atmp: u32,
        val: u32,
        vstride: u32,
        smeta: OpMeta,
    },
    /// Fused per-lane `CtxRead` run over lanes `0..n` of one field.
    CtxReadRun { field: CtxField, n: u32, dst: u32 },

    /// Unconditional branch to a µop index.
    Br { target: u32, term: TermInfo },
    /// Conditional branch on bit 0 of `cond`.
    CondBr { cond: BSrc, taken: u32, fall: u32, term: TermInfo },
    /// Multi-way branch; cases live in the program's side table.
    Switch { val: SwitchVal, cases: (u32, u32), default: u32, term: TermInfo },
    /// Return/yield out of the warp call.
    Ret { term: TermInfo },
}

/// Number of distinct µop opcodes ([`OpKind`] variants).
pub(crate) const N_UOPS: usize = 32;

/// Stable snake_case µop names, indexed by [`OpKind::opcode`]. The
/// profiler's reports and collapsed-stack output use these.
pub(crate) static UOP_NAMES: [&str; N_UOPS] = [
    "bin",
    "un",
    "fma",
    "cmp",
    "select",
    "cvt",
    "load",
    "store",
    "atom",
    "insert",
    "extract",
    "splat",
    "reduce",
    "ctx_read",
    "set_rp_imm",
    "set_rp_reg",
    "set_status",
    "vote",
    "mov_vec",
    "mov_scalar",
    "unsupported",
    "cmp_br",
    "bin_bin",
    "load_bin",
    "copy_run",
    "load_run",
    "store_run",
    "ctx_read_run",
    "br",
    "cond_br",
    "switch",
    "ret",
];

/// Which opcodes are decode-time superinstructions (fused µops), indexed
/// like [`UOP_NAMES`].
pub(crate) static UOP_FUSED: [bool; N_UOPS] = {
    let mut fused = [false; N_UOPS];
    // CmpBr, BinBin, LoadBin, CopyRun, LoadRun, StoreRun, CtxReadRun.
    let mut i = 21;
    while i <= 27 {
        fused[i] = true;
        i += 1;
    }
    fused
};

impl OpKind {
    /// Dense opcode index (declaration order), used to key the µop
    /// profiler's count arrays.
    #[inline(always)]
    pub(crate) fn opcode(&self) -> usize {
        match self {
            OpKind::Bin { .. } => 0,
            OpKind::Un { .. } => 1,
            OpKind::Fma { .. } => 2,
            OpKind::Cmp { .. } => 3,
            OpKind::Select { .. } => 4,
            OpKind::Cvt { .. } => 5,
            OpKind::Load { .. } => 6,
            OpKind::Store { .. } => 7,
            OpKind::Atom { .. } => 8,
            OpKind::Insert { .. } => 9,
            OpKind::Extract { .. } => 10,
            OpKind::Splat { .. } => 11,
            OpKind::Reduce { .. } => 12,
            OpKind::CtxRead { .. } => 13,
            OpKind::SetRpImm { .. } => 14,
            OpKind::SetRpReg { .. } => 15,
            OpKind::SetStatus { .. } => 16,
            OpKind::Vote { .. } => 17,
            OpKind::MovVec { .. } => 18,
            OpKind::MovScalar { .. } => 19,
            OpKind::Unsupported { .. } => 20,
            OpKind::CmpBr { .. } => 21,
            OpKind::BinBin { .. } => 22,
            OpKind::LoadBin { .. } => 23,
            OpKind::CopyRun { .. } => 24,
            OpKind::LoadRun { .. } => 25,
            OpKind::StoreRun { .. } => 26,
            OpKind::CtxReadRun { .. } => 27,
            OpKind::Br { .. } => 28,
            OpKind::CondBr { .. } => 29,
            OpKind::Switch { .. } => 30,
            OpKind::Ret { .. } => 31,
        }
    }

    /// Vector lanes the µop operates over: the `w` of element-wise µops,
    /// 1 for scalar, memory, glue, and control µops. This is the decoded
    /// form of the chosen warp width — element-wise µops of a width-`w`
    /// specialization carry `w` (or 1 when the specializer proved the
    /// value uniform), so the per-program tally
    /// ([`DecodeStats::vector_ops`]) measures how much of the stream
    /// actually vectorized at that width.
    #[inline(always)]
    pub(crate) fn lanes(&self) -> u32 {
        match *self {
            OpKind::Bin { w, .. }
            | OpKind::Un { w, .. }
            | OpKind::Fma { w, .. }
            | OpKind::Cmp { w, .. }
            | OpKind::Select { w, .. }
            | OpKind::Cvt { w, .. }
            | OpKind::Insert { w, .. }
            | OpKind::Reduce { w, .. }
            | OpKind::MovVec { w, .. } => w,
            _ => 1,
        }
    }
}

/// Count the µops of `code` that operate on more than one lane. Derived
/// from the stream (never serialized): decode fills it for fresh
/// programs and `serial` recomputes it on rehydration, so persisted
/// artifacts from older builds stay readable.
pub(crate) fn count_vector_ops(code: &[Op]) -> u64 {
    code.iter().filter(|op| op.kind.lanes() > 1).count() as u64
}

/// Compile-time sink for the µop profiler. The execution loop is
/// monomorphized over this, so the unprofiled instantiation (the
/// [`NoProfile`] impl, all no-ops) carries zero per-µop overhead — the
/// hot path stays byte-for-byte what it was before profiling existed.
pub(crate) trait UopSink {
    /// Called once per µop dispatch; returns the opcode index the
    /// following [`charge`](Self::charge) calls attribute to.
    fn note_op(&mut self, kind: &OpKind) -> usize;
    /// Attribute `cycles` modeled cycles to opcode `opc` (called by the
    /// charge/retire macros, including per fused component).
    fn charge(&mut self, opc: usize, cycles: u32);
}

/// The disabled sink: everything inlines to nothing.
pub(crate) struct NoProfile;

impl UopSink for NoProfile {
    #[inline(always)]
    fn note_op(&mut self, _kind: &OpKind) -> usize {
        0
    }

    #[inline(always)]
    fn charge(&mut self, _opc: usize, _cycles: u32) {}
}

/// Stack-allocated per-warp-call µop histogram, flushed to
/// `dpvk_trace::profile` after the warp returns.
pub(crate) struct UopCounts {
    /// Dispatch count per opcode.
    pub hits: [u64; N_UOPS],
    /// Modeled cycles attributed per opcode (charge + retire costs, so
    /// the per-warp sum equals exactly `cycles_body + cycles_yield`).
    pub cycles: [u64; N_UOPS],
}

impl UopCounts {
    fn new() -> UopCounts {
        UopCounts { hits: [0; N_UOPS], cycles: [0; N_UOPS] }
    }
}

impl UopSink for UopCounts {
    #[inline(always)]
    fn note_op(&mut self, kind: &OpKind) -> usize {
        let opc = kind.opcode();
        self.hits[opc] += 1;
        opc
    }

    #[inline(always)]
    fn charge(&mut self, opc: usize, cycles: u32) {
        self.cycles[opc] += u64::from(cycles);
    }
}

/// Profiler identity of a decoded program: which kernel ×
/// specialization its samples aggregate under.
#[derive(Debug, Clone)]
pub(crate) struct ProfileTag {
    /// Kernel name.
    pub kernel: Arc<str>,
    /// Specialization variant label (`"baseline"`, `"dynamic"`, ...).
    pub variant: &'static str,
}

/// Decode-time tallies: µop counts and superinstruction fusion hits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// µops emitted.
    pub ops: u64,
    /// Source instructions plus terminators covered by those µops.
    pub source_insts: u64,
    /// `Cmp`+`CondBr` pairs fused into a compare-branch.
    pub fused_cmp_br: u64,
    /// Scalar `Bin`+`Bin` chains fused.
    pub fused_bin_bin: u64,
    /// Scalar `Load`+`Bin` pairs fused.
    pub fused_load_bin: u64,
    /// Per-lane glue runs (`Extract`/`Insert`/`Load`/`Store`/`Mov`/
    /// `CtxRead` sequences) collapsed into run superinstructions.
    pub fused_runs: u64,
    /// µops operating on more than one lane — the share of the stream
    /// that actually vectorized at the specialization's warp width.
    /// Derived from the µop stream, not serialized: decode fills it for
    /// fresh programs and `serial` recomputes it on rehydration.
    pub vector_ops: u64,
}

/// A function lowered to linear bytecode, ready for
/// [`execute_warp_bytecode`]. Built once per compiled specialization by
/// [`BytecodeProgram::decode`](crate::decode) and cached next to the
/// [`FrameLayout`](crate::FrameLayout).
#[derive(Debug, Clone)]
pub struct BytecodeProgram {
    /// Linearized µops; block 0 starts at index 0.
    pub(crate) code: Vec<Op>,
    /// Switch case table: `(match value, target µop index)`.
    pub(crate) cases: Vec<(i64, u32)>,
    /// Frame slots the program executes against.
    pub(crate) slots: usize,
    /// Warp width of the source function.
    pub(crate) warp_size: u32,
    /// Decode statistics (µop count, fusion tallies).
    pub stats: DecodeStats,
    /// Profiler identity (kernel × specialization). `None` until
    /// [`BytecodeProgram::attach_profile`] runs; without it the µop
    /// profiler has nothing to aggregate under and skips this program.
    pub(crate) profile: Option<ProfileTag>,
}

impl BytecodeProgram {
    /// Tag this program with its kernel name and specialization variant
    /// so the µop profiler can attribute its samples, and (when tracing
    /// is live) record the static µop mix for the profile report.
    pub fn attach_profile(&mut self, kernel: &str, variant: &'static str) {
        self.profile = Some(ProfileTag { kernel: Arc::from(kernel), variant });
        if dpvk_trace::profile::uop_enabled() {
            let mut counts = [0u64; N_UOPS];
            for op in &self.code {
                counts[op.kind.opcode()] += 1;
            }
            dpvk_trace::profile::record_static_mix(kernel, self.warp_size, variant, &counts);
        }
    }

    /// Profiler key `(kernel, variant)` if [`attach_profile`]
    /// (`Self::attach_profile`) has run.
    pub fn profile_key(&self) -> Option<(&str, &'static str)> {
        self.profile.as_ref().map(|t| (&*t.kernel, t.variant))
    }
    /// Check every register-slot index, branch target and case-table
    /// range the engine can touch at runtime against the program's
    /// bounds, panicking on any violation.
    ///
    /// Runs once per decode. The execution loop's register-file
    /// accessors ([`lane`], [`read4`], [`set_bcast`] and the chunk
    /// kernels) skip per-access bounds checks on the strength of this
    /// pass — validate once, trust thereafter — so every `OpKind`
    /// variant MUST be covered by the exhaustive match below. A
    /// violation here is a decoder bug; panicking at decode time is
    /// strictly better than risking out-of-bounds register access on
    /// every dynamic instruction later.
    pub(crate) fn validate(&self) {
        let slots = self.slots;
        let code_len = self.code.len();
        // Reads of lanes `0..w` from a source; scalar positions pass w=1.
        let src = |s: BSrc, w: u32| match s {
            BSrc::Slot(o) => assert!((o as usize) < slots, "slot {o} out of {slots}"),
            BSrc::Lanes(o) => {
                assert!(o as usize + w.max(1) as usize <= slots, "lanes {o}+{w} out of {slots}")
            }
            BSrc::Imm(_) | BSrc::Prev => {}
        };
        let dst = |d: BDst| {
            assert!(d.off as usize + d.w.max(1) as usize <= slots, "dst {d:?} out of {slots}")
        };
        let run = |base: u32, n: u32, stride: u32| {
            let last = base as u64 + (n.max(1) as u64 - 1) * stride as u64;
            assert!(last < slots as u64, "run {base}+{n}*{stride} out of {slots}");
        };
        let target = |t: u32| assert!((t as usize) < code_len, "target {t} out of {code_len}");
        for op in &self.code {
            match op.kind {
                OpKind::Bin { w, dst: d, a, b, .. } | OpKind::Cmp { w, dst: d, a, b, .. } => {
                    src(a, w);
                    src(b, w);
                    dst(d);
                }
                OpKind::Un { w, dst: d, a, .. } | OpKind::Cvt { w, dst: d, a, .. } => {
                    src(a, w);
                    dst(d);
                }
                OpKind::Fma { w, dst: d, a, b, c, .. } => {
                    src(a, w);
                    src(b, w);
                    src(c, w);
                    dst(d);
                }
                OpKind::Select { w, dst: d, cond, a, b } => {
                    src(cond, w);
                    src(a, w);
                    src(b, w);
                    dst(d);
                }
                OpKind::Load { dst: d, addr, .. } => {
                    src(addr, 1);
                    dst(d);
                }
                OpKind::Store { addr, value, .. } => {
                    src(addr, 1);
                    src(value, 1);
                }
                OpKind::Atom { dst: d, addr, a, b, .. } => {
                    src(addr, 1);
                    src(a, 1);
                    if let Some(b) = b {
                        src(b, 1);
                    }
                    dst(d);
                }
                OpKind::Insert { w, dst: d, vec, elem, lane } => {
                    assert!(lane < w, "insert lane {lane} out of width {w}");
                    if let Some(v) = vec {
                        src(v, w);
                    }
                    src(elem, 1);
                    dst(d);
                    run(d.off, w, 1);
                }
                OpKind::Extract { dst: d, vec, lane } => {
                    src(vec, lane + 1);
                    dst(d);
                }
                OpKind::Splat { dst: d, a }
                | OpKind::Vote { dst: d, a }
                | OpKind::MovScalar { dst: d, a } => {
                    src(a, 1);
                    dst(d);
                }
                OpKind::Reduce { w, dst: d, vec, .. } => {
                    src(vec, w);
                    dst(d);
                }
                OpKind::MovVec { w, off, a } => {
                    src(a, w);
                    run(off, w, 1);
                }
                OpKind::CtxRead { dst: d, .. } => dst(d),
                OpKind::SetRpImm { lane, .. } => {
                    assert!(lane < self.warp_size, "resume lane {lane}");
                }
                OpKind::SetRpReg { lane, slot, .. } => {
                    assert!(lane < self.warp_size, "resume lane {lane}");
                    src(BSrc::Slot(slot), 1);
                }
                OpKind::SetStatus { .. } | OpKind::Unsupported { .. } => {}
                OpKind::CmpBr { a, b, dst: d, taken, fall, .. } => {
                    src(a, 1);
                    src(b, 1);
                    if let Some(d) = d {
                        dst(d);
                    }
                    target(taken);
                    target(fall);
                }
                OpKind::BinBin { a1, b1, dst1, a2, b2, dst2, .. } => {
                    src(a1, 1);
                    src(b1, 1);
                    src(a2, 1);
                    src(b2, 1);
                    if let Some(d) = dst1 {
                        dst(d);
                    }
                    dst(dst2);
                }
                OpKind::LoadBin { addr, dst1, a2, b2, dst2, .. } => {
                    src(addr, 1);
                    src(a2, 1);
                    src(b2, 1);
                    if let Some(d) = dst1 {
                        dst(d);
                    }
                    dst(dst2);
                }
                OpKind::CopyRun { n, src: s, sstride, dst: d, prefill } => {
                    run(s, n, sstride);
                    run(d, n, 1);
                    if let Some((v, w)) = prefill {
                        src(v, w);
                        run(d, w, 1);
                    }
                }
                OpKind::LoadRun { n, addr, dst: d, .. } => {
                    run(addr, n, 1);
                    run(d, n, 1);
                }
                OpKind::StoreRun { n, avec, atmp, val, vstride, .. } => {
                    run(avec, n, 1);
                    run(atmp, n, 1);
                    run(val, n, vstride);
                }
                OpKind::CtxReadRun { n, dst: d, .. } => run(d, n, 1),
                OpKind::Br { target: t, .. } => target(t),
                OpKind::CondBr { cond, taken, fall, .. } => {
                    src(cond, 1);
                    target(taken);
                    target(fall);
                }
                OpKind::Switch { val, cases: (start, len), default, .. } => {
                    if let SwitchVal::Reg { slot, .. } = val {
                        src(BSrc::Slot(slot), 1);
                    }
                    assert!(
                        start as usize + len as usize <= self.cases.len(),
                        "case range {start}+{len} out of {}",
                        self.cases.len()
                    );
                    target(default);
                }
                OpKind::Ret { .. } => {}
            }
        }
        for &(_, t) in &self.cases {
            target(t);
        }
    }

    /// Warp width of the source function.
    pub fn warp_size(&self) -> u32 {
        self.warp_size
    }

    /// Number of register-frame slots the program was validated against.
    /// Callers rehydrating a persisted program cross-check this against
    /// the [`FrameLayout`](crate::FrameLayout) they recompute.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of µops in the decoded stream.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no µops (an empty function).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

// The accessors below skip slice bounds checks: every `BSrc`/`BDst`
// offset was range-checked against the frame's slot count by
// `BytecodeProgram::validate` at decode time, and callers only pass
// lane indices below the op's validated width. The checks cost 1–3 ns
// per guest instruction on the hot paths, which is why they are elided
// rather than left to the optimizer.

/// Lane `i` of a resolved operand; width-1 slots broadcast and `Prev`
/// yields the fused predecessor's value.
#[inline(always)]
pub(crate) fn lane(regs: &[u64], s: BSrc, i: usize, prev: u64) -> u64 {
    match s {
        BSrc::Imm(v) => v,
        // SAFETY: slot/lane offsets were validated at decode time and
        // `i` is below the op's validated width.
        BSrc::Slot(o) => unsafe { *regs.get_unchecked(o as usize) },
        BSrc::Lanes(o) => unsafe { *regs.get_unchecked(o as usize + i) },
        BSrc::Prev => prev,
    }
}

/// Four consecutive lanes starting at `base`, as one chunk.
#[inline(always)]
pub(crate) fn read4(regs: &[u64], s: BSrc, base: usize) -> [u64; 4] {
    match s {
        BSrc::Imm(v) => [v; 4],
        BSrc::Slot(o) => [regs[o as usize]; 4],
        BSrc::Lanes(o) => {
            let o = o as usize + base;
            // SAFETY: decode-time validation bounds `o + w`, and callers
            // only take this path while `base + 4 <= w`.
            unsafe {
                [
                    *regs.get_unchecked(o),
                    *regs.get_unchecked(o + 1),
                    *regs.get_unchecked(o + 2),
                    *regs.get_unchecked(o + 3),
                ]
            }
        }
        BSrc::Prev => unreachable!("fused operand in a vector kernel"),
    }
}

/// Broadcast-write a scalar result across the register's declared width.
#[inline(always)]
pub(crate) fn set_bcast(regs: &mut [u64], dst: BDst, v: u64) {
    let off = dst.off as usize;
    // SAFETY: `dst.off + dst.w` was validated at decode time.
    unsafe { regs.get_unchecked_mut(off..off + dst.w as usize) }.fill(v);
}

/// Lane-wise unary kernel over `[u64; 4]` chunks. The per-op dispatch is
/// hoisted into `f`'s monomorphized body, leaving the chunk loop
/// branch-free for the autovectorizer.
#[inline(always)]
pub(crate) fn vec1(regs: &mut [u64], w: usize, doff: usize, a: BSrc, f: impl Fn(u64) -> u64) {
    let mut i = 0;
    while i + 4 <= w {
        let x = read4(regs, a, i);
        let d = [f(x[0]), f(x[1]), f(x[2]), f(x[3])];
        // SAFETY: the destination range was validated at decode time and
        // `i + 4 <= w`.
        unsafe { regs.get_unchecked_mut(doff + i..doff + i + 4) }.copy_from_slice(&d);
        i += 4;
    }
    while i < w {
        regs[doff + i] = f(lane(regs, a, i, 0));
        i += 1;
    }
}

/// Lane-wise binary kernel over `[u64; 4]` chunks.
#[inline(always)]
pub(crate) fn vec2(
    regs: &mut [u64],
    w: usize,
    doff: usize,
    a: BSrc,
    b: BSrc,
    f: impl Fn(u64, u64) -> u64,
) {
    let mut i = 0;
    while i + 4 <= w {
        let x = read4(regs, a, i);
        let y = read4(regs, b, i);
        let d = [f(x[0], y[0]), f(x[1], y[1]), f(x[2], y[2]), f(x[3], y[3])];
        // SAFETY: the destination range was validated at decode time and
        // `i + 4 <= w`.
        unsafe { regs.get_unchecked_mut(doff + i..doff + i + 4) }.copy_from_slice(&d);
        i += 4;
    }
    while i < w {
        regs[doff + i] = f(lane(regs, a, i, 0), lane(regs, b, i, 0));
        i += 1;
    }
}

/// Lane-wise ternary kernel over `[u64; 4]` chunks.
#[inline(always)]
pub(crate) fn vec3(
    regs: &mut [u64],
    w: usize,
    doff: usize,
    a: BSrc,
    b: BSrc,
    c: BSrc,
    f: impl Fn(u64, u64, u64) -> u64,
) {
    let mut i = 0;
    while i + 4 <= w {
        let x = read4(regs, a, i);
        let y = read4(regs, b, i);
        let z = read4(regs, c, i);
        let d =
            [f(x[0], y[0], z[0]), f(x[1], y[1], z[1]), f(x[2], y[2], z[2]), f(x[3], y[3], z[3])];
        // SAFETY: the destination range was validated at decode time and
        // `i + 4 <= w`.
        unsafe { regs.get_unchecked_mut(doff + i..doff + i + 4) }.copy_from_slice(&d);
        i += 4;
    }
    while i < w {
        regs[doff + i] = f(lane(regs, a, i, 0), lane(regs, b, i, 0), lane(regs, c, i, 0));
        i += 1;
    }
}

/// Element-wise binary op. Returns the scalar result (for fused
/// chaining); vector forms return 0.
///
/// The arithmetic in each lane closure replicates `scalar_bin` exactly
/// (guarded by the differential fuzz tests); infallible ops get chunked
/// kernels, fallible ones (integer Div/Rem) fall back to the sequential
/// per-lane loop so error ordering and partially-written lanes match the
/// tree-walk.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn exec_bin(
    regs: &mut [u64],
    op: BinOp,
    sty: STy,
    signed: bool,
    w: u32,
    dst: BDst,
    a: BSrc,
    b: BSrc,
    prev: u64,
) -> Result<u64, VmError> {
    if w == 1 {
        let r = scalar_bin(op, sty, signed, lane(regs, a, 0, prev), lane(regs, b, 0, prev))?;
        set_bcast(regs, dst, r);
        return Ok(r);
    }
    let w = w as usize;
    let doff = dst.off as usize;
    if sty.is_float() {
        match op {
            BinOp::Add => vec2(regs, w, doff, a, b, |x, y| f_enc(f_of(x, sty) + f_of(y, sty), sty)),
            BinOp::Sub => vec2(regs, w, doff, a, b, |x, y| f_enc(f_of(x, sty) - f_of(y, sty), sty)),
            BinOp::Mul => vec2(regs, w, doff, a, b, |x, y| f_enc(f_of(x, sty) * f_of(y, sty), sty)),
            BinOp::Div => vec2(regs, w, doff, a, b, |x, y| f_enc(f_of(x, sty) / f_of(y, sty), sty)),
            BinOp::Min => {
                vec2(regs, w, doff, a, b, |x, y| f_enc(f_of(x, sty).min(f_of(y, sty)), sty))
            }
            BinOp::Max => {
                vec2(regs, w, doff, a, b, |x, y| f_enc(f_of(x, sty).max(f_of(y, sty)), sty))
            }
            BinOp::And => vec2(regs, w, doff, a, b, |x, y| mask_to(x & y, sty)),
            BinOp::Or => vec2(regs, w, doff, a, b, |x, y| mask_to(x | y, sty)),
            BinOp::Xor => vec2(regs, w, doff, a, b, |x, y| mask_to(x ^ y, sty)),
            _ => {
                for i in 0..w {
                    regs[doff + i] =
                        scalar_bin(op, sty, signed, lane(regs, a, i, 0), lane(regs, b, i, 0))?;
                }
            }
        }
        return Ok(0);
    }
    let shift_mask = (sty.bits().max(1) - 1).max(1) as u64;
    match op {
        BinOp::Add => vec2(regs, w, doff, a, b, |x, y| {
            mask_to(sext(x, sty).wrapping_add(sext(y, sty)) as u64, sty)
        }),
        BinOp::Sub => vec2(regs, w, doff, a, b, |x, y| {
            mask_to(sext(x, sty).wrapping_sub(sext(y, sty)) as u64, sty)
        }),
        BinOp::Mul => vec2(regs, w, doff, a, b, |x, y| {
            mask_to(sext(x, sty).wrapping_mul(sext(y, sty)) as u64, sty)
        }),
        BinOp::Min if signed => {
            vec2(regs, w, doff, a, b, |x, y| mask_to(sext(x, sty).min(sext(y, sty)) as u64, sty))
        }
        BinOp::Min => {
            vec2(regs, w, doff, a, b, |x, y| mask_to(mask_to(x, sty).min(mask_to(y, sty)), sty))
        }
        BinOp::Max if signed => {
            vec2(regs, w, doff, a, b, |x, y| mask_to(sext(x, sty).max(sext(y, sty)) as u64, sty))
        }
        BinOp::Max => {
            vec2(regs, w, doff, a, b, |x, y| mask_to(mask_to(x, sty).max(mask_to(y, sty)), sty))
        }
        BinOp::And => vec2(regs, w, doff, a, b, |x, y| mask_to(x & y, sty)),
        BinOp::Or => vec2(regs, w, doff, a, b, |x, y| mask_to(x | y, sty)),
        BinOp::Xor => vec2(regs, w, doff, a, b, |x, y| mask_to(x ^ y, sty)),
        BinOp::Shl => {
            vec2(regs, w, doff, a, b, |x, y| mask_to(mask_to(x, sty) << (y & shift_mask), sty))
        }
        BinOp::Shr if signed => vec2(regs, w, doff, a, b, |x, y| {
            mask_to((sext(x, sty) >> (y & shift_mask)) as u64, sty)
        }),
        BinOp::Shr => {
            vec2(regs, w, doff, a, b, |x, y| mask_to(mask_to(x, sty) >> (y & shift_mask), sty))
        }
        _ => {
            // MulHi (i128 product) and the fallible Div/Rem: sequential,
            // via the shared scalar helper.
            for i in 0..w {
                regs[doff + i] =
                    scalar_bin(op, sty, signed, lane(regs, a, i, 0), lane(regs, b, i, 0))?;
            }
        }
    }
    Ok(0)
}

/// Element-wise unary op.
#[inline(always)]
pub(crate) fn exec_un(
    regs: &mut [u64],
    op: UnOp,
    sty: STy,
    w: u32,
    dst: BDst,
    a: BSrc,
) -> Result<(), VmError> {
    if w == 1 {
        let r = scalar_un(op, sty, lane(regs, a, 0, 0))?;
        set_bcast(regs, dst, r);
        return Ok(());
    }
    let w = w as usize;
    let doff = dst.off as usize;
    if sty.is_float() {
        match op {
            UnOp::Neg => vec1(regs, w, doff, a, |x| f_enc(-f_of(x, sty), sty)),
            UnOp::Abs => vec1(regs, w, doff, a, |x| f_enc(f_of(x, sty).abs(), sty)),
            UnOp::Sqrt => vec1(regs, w, doff, a, |x| f_enc(f_of(x, sty).sqrt(), sty)),
            UnOp::Rsqrt => vec1(regs, w, doff, a, |x| f_enc(1.0 / f_of(x, sty).sqrt(), sty)),
            UnOp::Rcp => vec1(regs, w, doff, a, |x| f_enc(1.0 / f_of(x, sty), sty)),
            _ => {
                // Transcendentals (libm calls) and the erroring Not.
                for i in 0..w {
                    regs[doff + i] = scalar_un(op, sty, lane(regs, a, i, 0))?;
                }
            }
        }
        return Ok(());
    }
    match op {
        UnOp::Neg => vec1(regs, w, doff, a, |x| mask_to(sext(x, sty).wrapping_neg() as u64, sty)),
        UnOp::Abs => vec1(regs, w, doff, a, |x| mask_to(sext(x, sty).wrapping_abs() as u64, sty)),
        UnOp::Not if sty == STy::I1 => vec1(regs, w, doff, a, |x| (x & 1) ^ 1),
        UnOp::Not => vec1(regs, w, doff, a, |x| mask_to(!x, sty)),
        _ => {
            for i in 0..w {
                regs[doff + i] = scalar_un(op, sty, lane(regs, a, i, 0))?;
            }
        }
    }
    Ok(())
}

/// Execute one warp through a decoded program, starting at µop 0.
///
/// The bytecode twin of
/// [`execute_warp_framed`](crate::interp::execute_warp_framed): same
/// contract, same errors, bit-identical modeled cycles, [`ExecStats`]
/// and memory effects. `scratch` is reused across calls and allocates
/// nothing once grown (the program caches its slot count).
///
/// # Errors
///
/// Identical to `execute_warp_framed`: memory faults, division by zero,
/// watchdog, deadline, cancellation — polled every
/// [`ExecLimits::check_interval`] instructions, terminators included.
///
/// # Panics
///
/// Panics if `ctxs.len() != program.warp_size()`.
#[allow(clippy::too_many_arguments)]
pub fn execute_warp_bytecode(
    program: &BytecodeProgram,
    scratch: &mut RegFrame,
    ctxs: &mut [ThreadContext],
    entry_id: i64,
    mem: &mut MemAccess<'_>,
    stats: &mut ExecStats,
    limits: &ExecLimits,
    cancel: Option<&CancelToken>,
) -> Result<WarpOutcome, VmError> {
    // The loop body is compiled twice: once generic, once with AVX2+FMA
    // enabled so `mul_add` lowers to a single `vfmadd` (instead of a
    // libm call) and the `[u64; 4]` chunk kernels widen to 256-bit
    // vectors. Both produce bit-identical results — hardware FMA and
    // libm `fma` are the same correctly-rounded IEEE operation — so the
    // pick is purely a host-speed decision, made per warp call from the
    // (cached) CPUID probe. Non-x86 hosts (e.g. aarch64, whose baseline
    // already includes fused multiply-add) always take the generic twin.
    #[cfg(target_arch = "x86_64")]
    let simd =
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma");
    #[cfg(not(target_arch = "x86_64"))]
    let simd = false;

    // Profiled warps run the same loop monomorphized over `UopCounts`;
    // the per-warp histogram lives on the stack and flushes to the
    // global profile in one call after the warp returns, so the loop
    // body itself touches no shared state.
    if dpvk_trace::profile::uop_enabled() {
        if let Some((kernel, variant)) = program.profile_key() {
            let mut counts = UopCounts::new();
            let result = dispatch(
                simd,
                program,
                scratch,
                ctxs,
                entry_id,
                mem,
                stats,
                limits,
                cancel,
                &mut counts,
            );
            dpvk_trace::profile::record_uops(&dpvk_trace::profile::UopSample {
                kernel,
                warp_size: program.warp_size,
                variant,
                path: if simd { "avx2" } else { "portable" },
                names: &UOP_NAMES,
                fused: &UOP_FUSED,
                hits: &counts.hits,
                cycles: &counts.cycles,
            });
            return result;
        }
    }
    dispatch(simd, program, scratch, ctxs, entry_id, mem, stats, limits, cancel, &mut NoProfile)
}

/// Route one warp call to the SIMD or portable twin of the loop.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn dispatch<P: UopSink>(
    simd: bool,
    program: &BytecodeProgram,
    scratch: &mut RegFrame,
    ctxs: &mut [ThreadContext],
    entry_id: i64,
    mem: &mut MemAccess<'_>,
    stats: &mut ExecStats,
    limits: &ExecLimits,
    cancel: Option<&CancelToken>,
    prof: &mut P,
) -> Result<WarpOutcome, VmError> {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: the caller verified AVX2 and FMA support at runtime.
        return unsafe {
            exec_loop_simd(program, scratch, ctxs, entry_id, mem, stats, limits, cancel, prof)
        };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    exec_loop(program, scratch, ctxs, entry_id, mem, stats, limits, cancel, prof)
}

/// The AVX2+FMA twin of [`exec_loop`]; see [`execute_warp_bytecode`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn exec_loop_simd<P: UopSink>(
    program: &BytecodeProgram,
    scratch: &mut RegFrame,
    ctxs: &mut [ThreadContext],
    entry_id: i64,
    mem: &mut MemAccess<'_>,
    stats: &mut ExecStats,
    limits: &ExecLimits,
    cancel: Option<&CancelToken>,
    prof: &mut P,
) -> Result<WarpOutcome, VmError> {
    exec_loop(program, scratch, ctxs, entry_id, mem, stats, limits, cancel, prof)
}

#[allow(clippy::too_many_arguments)]
// The charge/retire macros update `cycles`/`next_poll` uniformly; on µops
// that return right after (Ret, Unsupported) those writes are dead.
#[allow(unused_assignments)]
#[inline(always)]
fn exec_loop<P: UopSink>(
    program: &BytecodeProgram,
    scratch: &mut RegFrame,
    ctxs: &mut [ThreadContext],
    entry_id: i64,
    mem: &mut MemAccess<'_>,
    stats: &mut ExecStats,
    limits: &ExecLimits,
    cancel: Option<&CancelToken>,
    prof: &mut P,
) -> Result<WarpOutcome, VmError> {
    assert_eq!(
        ctxs.len(),
        program.warp_size as usize,
        "warp size mismatch: {} contexts for a width-{} program",
        ctxs.len(),
        program.warp_size
    );
    let regs = scratch.prepare_slots(program.slots);
    let code = program.code.as_slice();
    let mut pc: usize = 0;
    let mut status: Option<ResumeStatus> = None;
    let mut executed: u64 = 0;
    let poll_stride = limits.check_interval.max(1);
    let polling = limits.deadline.is_some() || cancel.is_some();
    let mut next_poll = poll_stride;
    let mut cycles: u64 = 0;
    // Opcode of the µop currently dispatching; the charge/retire macros
    // attribute modeled cycles to it via the (monomorphized) sink. Must
    // be declared before the macros so their bodies resolve to it.
    let mut opc: usize = 0;

    stats.warp_entries += 1;
    stats.thread_entries += program.warp_size as u64;

    // Per-instruction bookkeeping, identical (in order and in counts) to
    // the tree-walk loop: the watchdog and the deadline/cancellation poll
    // tick on the same `executed` values, including per fused component.
    macro_rules! tick {
        () => {
            executed += 1;
            if executed > limits.max_instructions {
                return Err(VmError::Watchdog { limit: limits.max_instructions });
            }
            if polling && executed >= next_poll {
                next_poll = executed + poll_stride;
                if let Some(token) = cancel {
                    if token.is_cancelled() {
                        return Err(VmError::Cancelled);
                    }
                }
                if let Some(deadline) = limits.deadline {
                    if Instant::now() >= deadline {
                        return Err(VmError::Deadline);
                    }
                }
            }
        };
    }
    macro_rules! charge {
        ($meta:expr) => {
            tick!();
            cycles += $meta.cost as u64;
            prof.charge(opc, $meta.cost);
            stats.flops += $meta.flops as u64;
            if $meta.flags != 0 {
                if $meta.flags & F_LOAD != 0 {
                    stats.loads += 1;
                    if $meta.flags & F_RESTORE != 0 {
                        stats.restore_loads += 1;
                        stats.restore_bytes += $meta.bytes as u64;
                    }
                }
                if $meta.flags & F_STORE != 0 {
                    stats.stores += 1;
                    if $meta.flags & F_SPILL != 0 {
                        stats.spill_stores += 1;
                        stats.spill_bytes += $meta.bytes as u64;
                    }
                }
            }
        };
    }
    macro_rules! retire_block {
        ($term:expr) => {
            cycles += $term.cost as u64;
            prof.charge(opc, $term.cost);
            tick!();
            stats.instructions += $term.insts as u64;
            if $term.overhead {
                stats.cycles_yield += cycles;
            } else {
                stats.cycles_body += cycles;
            }
            cycles = 0;
        };
    }

    loop {
        let op = &code[pc];
        opc = prof.note_op(&op.kind);
        match op.kind {
            OpKind::Bin { op: bop, sty, signed, w, dst, a, b } => {
                charge!(op.meta);
                exec_bin(regs, bop, sty, signed, w, dst, a, b, 0)?;
                pc += 1;
            }
            OpKind::Un { op: uop, sty, w, dst, a } => {
                charge!(op.meta);
                exec_un(regs, uop, sty, w, dst, a)?;
                pc += 1;
            }
            OpKind::Fma { sty, w, dst, a, b, c } => {
                charge!(op.meta);
                exec_fma(regs, sty, w, dst, a, b, c);
                pc += 1;
            }
            OpKind::Cmp { pred, sty, signed, w, dst, a, b } => {
                charge!(op.meta);
                if w == 1 {
                    let r = scalar_cmp(pred, sty, signed, lane(regs, a, 0, 0), lane(regs, b, 0, 0));
                    set_bcast(regs, dst, r);
                } else {
                    vec2(regs, w as usize, dst.off as usize, a, b, |x, y| {
                        scalar_cmp(pred, sty, signed, x, y)
                    });
                }
                pc += 1;
            }
            OpKind::Select { w, dst, cond, a, b } => {
                charge!(op.meta);
                if w == 1 {
                    let r = if lane(regs, cond, 0, 0) & 1 != 0 {
                        lane(regs, a, 0, 0)
                    } else {
                        lane(regs, b, 0, 0)
                    };
                    set_bcast(regs, dst, r);
                } else {
                    vec3(regs, w as usize, dst.off as usize, cond, a, b, |c, x, y| {
                        if c & 1 != 0 {
                            x
                        } else {
                            y
                        }
                    });
                }
                pc += 1;
            }
            OpKind::Cvt { to, from, signed, w, dst, a } => {
                charge!(op.meta);
                if w == 1 {
                    let r = scalar_cvt(to, from, signed, lane(regs, a, 0, 0));
                    set_bcast(regs, dst, r);
                } else {
                    vec1(regs, w as usize, dst.off as usize, a, |x| {
                        scalar_cvt(to, from, signed, x)
                    });
                }
                pc += 1;
            }
            OpKind::Load { sty, space, dst, addr } => {
                charge!(op.meta);
                let a = lane(regs, addr, 0, 0);
                let bits = mem.read(space, a, sty.size_bytes())?;
                set_bcast(regs, dst, mask_to(bits, sty));
                pc += 1;
            }
            OpKind::Store { sty, space, addr, value } => {
                charge!(op.meta);
                let a = lane(regs, addr, 0, 0);
                let v = lane(regs, value, 0, 0);
                mem.write(space, a, sty.size_bytes(), v)?;
                pc += 1;
            }
            OpKind::Atom { sty, space, op: akind, signed, dst, addr, a, b } => {
                charge!(op.meta);
                let addr_v = lane(regs, addr, 0, 0);
                let av = lane(regs, a, 0, 0);
                let bv = b.map(|b| lane(regs, b, 0, 0));
                let old = atom_rmw(mem, sty, space, akind, signed, addr_v, av, bv)?;
                set_bcast(regs, dst, mask_to(old, sty));
                pc += 1;
            }
            OpKind::Insert { w, dst, vec, elem, lane: l } => {
                charge!(op.meta);
                let e = lane(regs, elem, 0, 0);
                let doff = dst.off as usize;
                if let Some(v) = vec {
                    for i in 0..w as usize {
                        regs[doff + i] = lane(regs, v, i, 0);
                    }
                }
                regs[doff + l as usize] = e;
                pc += 1;
            }
            OpKind::Extract { dst, vec, lane: l } => {
                charge!(op.meta);
                let v = lane(regs, vec, l as usize, 0);
                set_bcast(regs, dst, v);
                pc += 1;
            }
            OpKind::Splat { dst, a } => {
                charge!(op.meta);
                let v = lane(regs, a, 0, 0);
                set_bcast(regs, dst, v);
                pc += 1;
            }
            OpKind::Reduce { op: rop, sty, w, dst, vec } => {
                charge!(op.meta);
                let w = w as usize;
                let r = match rop {
                    ReduceOp::Add => {
                        let mut sum: u64 = 0;
                        for i in 0..w {
                            sum = sum.wrapping_add(mask_to(lane(regs, vec, i, 0), sty));
                        }
                        mask_to(sum, STy::I32)
                    }
                    ReduceOp::All => (0..w).all(|i| lane(regs, vec, i, 0) & 1 != 0) as u64,
                    ReduceOp::Any => (0..w).any(|i| lane(regs, vec, i, 0) & 1 != 0) as u64,
                };
                set_bcast(regs, dst, r);
                pc += 1;
            }
            OpKind::CtxRead { field, lane: l, dst } => {
                charge!(op.meta);
                let li = l as usize;
                let ctx = &ctxs[li.min(ctxs.len() - 1)];
                let v: u64 = match field {
                    CtxField::Tid(d) => ctx.tid[d as usize] as u64,
                    CtxField::Ntid(d) => ctx.ntid[d as usize] as u64,
                    CtxField::Ctaid(d) => ctx.ctaid[d as usize] as u64,
                    CtxField::Nctaid(d) => ctx.nctaid[d as usize] as u64,
                    CtxField::LocalBase => ctx.local_base,
                    CtxField::LaneId => l as u64,
                    CtxField::WarpSize => program.warp_size as u64,
                    CtxField::EntryId => mask_to(entry_id as u64, STy::I32),
                };
                set_bcast(regs, dst, v);
                pc += 1;
            }
            OpKind::SetRpImm { lane: l, id } => {
                charge!(op.meta);
                ctxs[l as usize].resume_point = id;
                pc += 1;
            }
            OpKind::SetRpReg { lane: l, slot, sty } => {
                charge!(op.meta);
                ctxs[l as usize].resume_point = sext(regs[slot as usize], sty);
                pc += 1;
            }
            OpKind::SetStatus { status: s } => {
                charge!(op.meta);
                status = Some(s);
                pc += 1;
            }
            OpKind::Vote { dst, a } => {
                charge!(op.meta);
                let v = lane(regs, a, 0, 0);
                set_bcast(regs, dst, v & 1);
                pc += 1;
            }
            OpKind::MovVec { w, off, a } => {
                charge!(op.meta);
                vec1(regs, w as usize, off as usize, a, |x| x);
                pc += 1;
            }
            OpKind::MovScalar { dst, a } => {
                charge!(op.meta);
                let v = lane(regs, a, 0, 0);
                set_bcast(regs, dst, v);
                pc += 1;
            }
            OpKind::CopyRun { n, src, sstride, dst, prefill } => {
                for i in 0..n as usize {
                    charge!(op.meta);
                    let e = regs[src as usize + i * sstride as usize];
                    if i == 0 {
                        // The first Insert of a pack copies its
                        // initializer vector before writing lane 0; the
                        // element is read first, exactly as unfused.
                        if let Some((v, w)) = prefill {
                            for j in 0..w as usize {
                                regs[dst as usize + j] = lane(regs, v, j, 0);
                            }
                        }
                    }
                    regs[dst as usize + i] = e;
                }
                pc += 1;
            }
            OpKind::LoadRun { n, sty, space, addr, dst } => {
                let size = sty.size_bytes();
                for i in 0..n as usize {
                    charge!(op.meta);
                    let bits = mem.read(space, regs[addr as usize + i], size)?;
                    regs[dst as usize + i] = mask_to(bits, sty);
                }
                pc += 1;
            }
            OpKind::StoreRun { n, sty, space, avec, atmp, val, vstride, smeta } => {
                let size = sty.size_bytes();
                for i in 0..n as usize {
                    charge!(op.meta);
                    let a = regs[avec as usize + i];
                    regs[atmp as usize + i] = a;
                    charge!(smeta);
                    mem.write(space, a, size, regs[val as usize + i * vstride as usize])?;
                }
                pc += 1;
            }
            OpKind::CtxReadRun { field, n, dst } => {
                for i in 0..n as usize {
                    charge!(op.meta);
                    let ctx = &ctxs[i.min(ctxs.len() - 1)];
                    let v: u64 = match field {
                        CtxField::Tid(d) => ctx.tid[d as usize] as u64,
                        CtxField::Ntid(d) => ctx.ntid[d as usize] as u64,
                        CtxField::Ctaid(d) => ctx.ctaid[d as usize] as u64,
                        CtxField::Nctaid(d) => ctx.nctaid[d as usize] as u64,
                        CtxField::LocalBase => ctx.local_base,
                        CtxField::LaneId => i as u64,
                        CtxField::WarpSize => program.warp_size as u64,
                        CtxField::EntryId => mask_to(entry_id as u64, STy::I32),
                    };
                    regs[dst as usize + i] = v;
                }
                pc += 1;
            }
            OpKind::Unsupported { what } => {
                charge!(op.meta);
                return Err(VmError::Unsupported(what.to_string()));
            }
            OpKind::CmpBr { pred, sty, signed, a, b, dst, taken, fall, term } => {
                charge!(op.meta);
                let c = scalar_cmp(pred, sty, signed, lane(regs, a, 0, 0), lane(regs, b, 0, 0));
                if let Some(d) = dst {
                    set_bcast(regs, d, c);
                }
                retire_block!(term);
                pc = if c & 1 != 0 { taken as usize } else { fall as usize };
            }
            OpKind::BinBin {
                op1,
                sty1,
                sg1,
                a1,
                b1,
                dst1,
                op2,
                sty2,
                sg2,
                a2,
                b2,
                dst2,
                meta2,
            } => {
                charge!(op.meta);
                let v1 = scalar_bin(op1, sty1, sg1, lane(regs, a1, 0, 0), lane(regs, b1, 0, 0))?;
                if let Some(d) = dst1 {
                    set_bcast(regs, d, v1);
                }
                charge!(meta2);
                let v2 = scalar_bin(op2, sty2, sg2, lane(regs, a2, 0, v1), lane(regs, b2, 0, v1))?;
                set_bcast(regs, dst2, v2);
                pc += 1;
            }
            OpKind::LoadBin { sty1, space, addr, dst1, op2, sty2, sg2, a2, b2, dst2, meta2 } => {
                charge!(op.meta);
                let a = lane(regs, addr, 0, 0);
                let bits = mem.read(space, a, sty1.size_bytes())?;
                let v1 = mask_to(bits, sty1);
                if let Some(d) = dst1 {
                    set_bcast(regs, d, v1);
                }
                charge!(meta2);
                let v2 = scalar_bin(op2, sty2, sg2, lane(regs, a2, 0, v1), lane(regs, b2, 0, v1))?;
                set_bcast(regs, dst2, v2);
                pc += 1;
            }
            OpKind::Br { target, term } => {
                retire_block!(term);
                pc = target as usize;
            }
            OpKind::CondBr { cond, taken, fall, term } => {
                retire_block!(term);
                let c = lane(regs, cond, 0, 0);
                pc = if c & 1 != 0 { taken as usize } else { fall as usize };
            }
            OpKind::Switch { val, cases, default, term } => {
                retire_block!(term);
                let v = match val {
                    SwitchVal::Reg { slot, sty } => sext(regs[slot as usize], sty),
                    SwitchVal::Imm(i) => i,
                    SwitchVal::BadFloat => return Err(VmError::Unsupported("float switch".into())),
                };
                let (start, len) = cases;
                let tbl = &program.cases[start as usize..(start + len) as usize];
                pc = tbl
                    .iter()
                    .find(|(case, _)| *case == v)
                    .map(|&(_, t)| t as usize)
                    .unwrap_or(default as usize);
            }
            OpKind::Ret { term } => {
                retire_block!(term);
                let status = status.unwrap_or(ResumeStatus::Exit);
                if status == ResumeStatus::Exit {
                    for c in ctxs.iter_mut() {
                        c.resume_point = dpvk_ir::EXIT_ENTRY_ID;
                    }
                }
                return Ok(WarpOutcome { status });
            }
        }
    }
}

/// Element-wise FMA with the `sty` dispatch hoisted out of the lane
/// loop: the common types get monomorphized chunk kernels whose bodies
/// are exact transcriptions of [`fma_one`] for that type (f32 stays
/// widen-to-f64 `mul_add`, narrow once — `f64::mul_add` is correctly
/// rounded, so the value is bit-identical to the generic path).
#[inline(always)]
pub(crate) fn exec_fma(regs: &mut [u64], sty: STy, w: u32, dst: BDst, a: BSrc, b: BSrc, c: BSrc) {
    if w == 1 {
        let r = fma_one(sty, lane(regs, a, 0, 0), lane(regs, b, 0, 0), lane(regs, c, 0, 0));
        set_bcast(regs, dst, r);
        return;
    }
    let w = w as usize;
    let doff = dst.off as usize;
    match sty {
        STy::F32 => vec3(regs, w, doff, a, b, c, |x, y, z| {
            let r = (f32::from_bits(x as u32) as f64)
                .mul_add(f32::from_bits(y as u32) as f64, f32::from_bits(z as u32) as f64);
            (r as f32).to_bits() as u64
        }),
        STy::F64 => vec3(regs, w, doff, a, b, c, |x, y, z| {
            f64::from_bits(x).mul_add(f64::from_bits(y), f64::from_bits(z)).to_bits()
        }),
        STy::I32 => vec3(regs, w, doff, a, b, c, |x, y, z| {
            let r = (x as i32 as i64).wrapping_mul(y as i32 as i64).wrapping_add(z as i32 as i64);
            r as u64 & 0xFFFF_FFFF
        }),
        STy::I64 => vec3(regs, w, doff, a, b, c, |x, y, z| {
            (x as i64).wrapping_mul(y as i64).wrapping_add(z as i64) as u64
        }),
        _ => vec3(regs, w, doff, a, b, c, |x, y, z| fma_one(sty, x, y, z)),
    }
}

/// One FMA lane, matching the tree-walk's `Fma` arm exactly.
#[inline(always)]
pub(crate) fn fma_one(sty: STy, x: u64, y: u64, z: u64) -> u64 {
    if sty.is_float() {
        f_enc(f_of(x, sty).mul_add(f_of(y, sty), f_of(z, sty)), sty)
    } else {
        let r = sext(x, sty).wrapping_mul(sext(y, sty)).wrapping_add(sext(z, sty));
        mask_to(r as u64, sty)
    }
}
