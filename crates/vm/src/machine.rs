//! Machine models: the parameters of the simulated vector processor.

/// Parameters of a simulated CPU with SIMD functional units.
///
/// The default model approximates the paper's evaluation platform — an
/// Intel Sandybridge i7-2600 with SSE 4.2: four cores at 3.4 GHz, 128-bit
/// vector datapath (four f32 lanes), sixteen architectural vector
/// registers. The estimated peak of ~108 single-precision GFLOP/s quoted
/// in the paper corresponds to one 4-wide FMA-pair issue per core per
/// cycle: `4 cores × 3.4 GHz × 8 flops`.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Model name for reports.
    pub name: String,
    /// SIMD width in 32-bit lanes (4 for SSE, 8 for AVX).
    pub simd_width: u32,
    /// Architectural vector registers (16 for x86-64 SSE/AVX).
    pub vector_registers: u32,
    /// Core clock in GHz, used only to convert modeled cycles to seconds
    /// for GFLOP/s reports.
    pub clock_ghz: f64,
    /// Worker-thread count the runtime will use (one per core).
    pub cores: u32,
    /// Extra cycles charged to every vector instruction for each spilled
    /// vector register when live vector state exceeds the register file.
    pub spill_penalty: u32,
}

impl MachineModel {
    /// The paper's evaluation platform: Sandybridge with SSE (4-wide).
    pub fn sandybridge_sse() -> Self {
        MachineModel {
            name: "Sandybridge (SSE 4.2)".into(),
            simd_width: 4,
            vector_registers: 16,
            clock_ghz: 3.4,
            cores: 4,
            spill_penalty: 2,
        }
    }

    /// An AVX-class variant (8-wide f32), for the scalability discussion
    /// in the paper's Section 6 ("expected to scale ... to arbitrary-width
    /// vector units").
    pub fn sandybridge_avx() -> Self {
        MachineModel {
            name: "Sandybridge (AVX)".into(),
            simd_width: 8,
            vector_registers: 16,
            clock_ghz: 3.4,
            cores: 4,
            spill_penalty: 2,
        }
    }

    /// A 16-wide model in the spirit of Knights Ferry / wide vector
    /// accelerators referenced by the paper.
    pub fn wide16() -> Self {
        MachineModel {
            name: "Wide-16 research model".into(),
            simd_width: 16,
            vector_registers: 32,
            clock_ghz: 1.2,
            cores: 32,
            spill_penalty: 2,
        }
    }

    /// Peak single-precision GFLOP/s of the whole chip under the model's
    /// one-FMA-pair-per-cycle assumption.
    pub fn peak_gflops(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * (self.simd_width as f64) * 2.0
    }

    /// Peak single-precision GFLOP/s of one core.
    pub fn peak_gflops_per_core(&self) -> f64 {
        self.clock_ghz * (self.simd_width as f64) * 2.0
    }

    /// Number of machine vector operations needed for one IR vector
    /// operation of `width` lanes of `elem_bytes`-byte elements.
    pub fn chunks(&self, width: u32, elem_bytes: usize) -> u64 {
        if width <= 1 {
            return 1;
        }
        let lane_bytes = elem_bytes.max(4) as u64;
        let vector_bytes = width as u64 * lane_bytes;
        let chunk_bytes = self.simd_width as u64 * 4;
        vector_bytes.div_ceil(chunk_bytes).max(1)
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel::sandybridge_sse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sse_peak_matches_paper_estimate() {
        let m = MachineModel::sandybridge_sse();
        // The paper estimates ~108 GFLOP/s.
        assert!((m.peak_gflops() - 108.8).abs() < 0.5, "{}", m.peak_gflops());
    }

    #[test]
    fn chunking() {
        let m = MachineModel::sandybridge_sse();
        assert_eq!(m.chunks(1, 4), 1);
        assert_eq!(m.chunks(4, 4), 1); // 4 x f32 fits one SSE op
        assert_eq!(m.chunks(8, 4), 2); // 8 x f32 needs two
        assert_eq!(m.chunks(4, 8), 2); // 4 x f64 needs two
        assert_eq!(m.chunks(2, 4), 1);
        // Sub-word elements still occupy full lanes in this model.
        assert_eq!(m.chunks(4, 1), 1);
    }

    #[test]
    fn avx_halves_chunks() {
        let m = MachineModel::sandybridge_avx();
        assert_eq!(m.chunks(8, 4), 1);
        assert_eq!(m.chunks(16, 4), 2);
    }
}
