//! The bytecode decoder: lowers a [`Function`] into a [`BytecodeProgram`].
//!
//! Decoding runs once per compiled specialization, right after the
//! [`FrameLayout`] is computed, and moves every per-dynamic-instruction
//! cost of the tree-walk to compile time:
//!
//! * operands resolve through the layout to [`BSrc`] slot offsets
//!   (`Slot` for width-1 registers, which broadcast; `Lanes` for vector
//!   bases) and immediates pre-encode to their masked bit patterns;
//! * modeled cycles ([`inst_cost`]), flops ([`inst_flops`]) and
//!   stat-attribution flags (load/store, spill/restore by block kind)
//!   bake into each µop's [`OpMeta`], so the engine charges a constant
//!   instead of re-walking the cost model;
//! * blocks concatenate into one linear stream with branch and switch
//!   targets patched to µop indices, so block dispatch is a `pc` move;
//! * the hottest adjacent pairs fuse into superinstructions:
//!   scalar `Cmp` + `CondBr` on its predicate, scalar `Bin`+`Bin` chains
//!   where the second reads the first, and scalar `Load`→`Bin` feeding
//!   pairs. A fused µop still ticks, charges, and polls once per source
//!   instruction, so watchdog counts, poll points, and every `ExecStats`
//!   field stay bit-identical to the tree-walk. The intermediate register
//!   write is elided only when use counting proves the fused consumer is
//!   its sole reader anywhere in the function;
//! * per-lane glue runs collapse into run superinstructions
//!   ([`Decoder::fuse_runs`]): the specializer lowers vector memory
//!   access and lane packing to long runs of width-1 `Extract`/`Load`/
//!   `Insert`/`Store`/`Mov`/`CtxRead` µops whose operands advance by a
//!   fixed stride. One run µop replays the whole sequence — same charge
//!   and poll per original component, same write order — from a single
//!   dispatch.
//!
//! [`inst_cost`]: crate::cost::inst_cost
//! [`inst_flops`]: crate::cost::inst_flops

use dpvk_ir::{BlockKind, Function, Inst, STy, Term, Type, VReg, Value};

use crate::bytecode::{
    BDst, BSrc, BytecodeProgram, DecodeStats, Op, OpKind, OpMeta, SwitchVal, TermInfo, F_LOAD,
    F_RESTORE, F_SPILL, F_STORE,
};
use crate::cost::{inst_cost, inst_flops, term_cost, CostInfo};
use crate::frame::FrameLayout;
use crate::interp::encode_imm;
use crate::machine::MachineModel;

impl BytecodeProgram {
    /// Lower `f` to linear bytecode.
    ///
    /// `layout` must be the [`FrameLayout`] of `f` and `info` its
    /// [`CostInfo`] under `model` — the same triple the tree-walk
    /// interpreter executes against, so the pre-baked charges match it
    /// exactly.
    pub fn decode(
        f: &Function,
        layout: &FrameLayout,
        model: &MachineModel,
        info: &CostInfo,
    ) -> BytecodeProgram {
        let mut d = Decoder {
            f,
            layout,
            model,
            info,
            use_counts: count_uses(f),
            code: Vec::new(),
            cases: Vec::new(),
            stats: DecodeStats::default(),
        };
        let mut block_start = Vec::with_capacity(f.blocks.len());
        for block in &f.blocks {
            let start = d.code.len();
            block_start.push(start as u32);
            d.lower_block(block);
            d.fuse_runs(start);
        }
        d.patch_targets(&block_start);
        d.stats.ops = d.code.len() as u64;
        d.stats.vector_ops = crate::bytecode::count_vector_ops(&d.code);
        let prog = BytecodeProgram {
            code: d.code,
            cases: d.cases,
            slots: layout.slots(),
            warp_size: f.warp_size,
            stats: d.stats,
            profile: None,
        };
        // Every slot index and branch target is checked once here; the
        // execution loop relies on this to elide per-access bounds
        // checks in its register-file accessors.
        prog.validate();
        prog
    }
}

/// Static read counts per register: how many operand positions (across
/// all instructions and terminators) name it. Fusion may elide the
/// intermediate write only when the fused consumer accounts for every
/// read in the function.
fn count_uses(f: &Function) -> Vec<u64> {
    let mut counts = vec![0u64; f.regs.len()];
    let mut bump = |v: &Value| {
        if let Some(r) = v.as_reg() {
            counts[r.index()] += 1;
        }
    };
    for block in &f.blocks {
        for inst in &block.insts {
            for v in inst.uses() {
                bump(&v);
            }
        }
        for v in block.term.uses() {
            bump(&v);
        }
    }
    counts
}

struct Decoder<'a> {
    f: &'a Function,
    layout: &'a FrameLayout,
    model: &'a MachineModel,
    info: &'a CostInfo,
    use_counts: Vec<u64>,
    code: Vec<Op>,
    cases: Vec<(i64, u32)>,
    stats: DecodeStats,
}

impl<'a> Decoder<'a> {
    /// Operand in a lane-indexed position (the tree-walk's `src`):
    /// width-1 registers broadcast via `Slot`, vectors read per lane.
    fn bsrc(&self, v: Value, sty: STy) -> BSrc {
        match v {
            Value::Reg(r) => {
                let off = self.layout.offset(r) as u32;
                if self.layout.width(r) == 1 {
                    BSrc::Slot(off)
                } else {
                    BSrc::Lanes(off)
                }
            }
            imm => BSrc::Imm(encode_imm(imm, sty)),
        }
    }

    /// Operand in a scalar position (the tree-walk's `eval_scalar`):
    /// registers always read their first slot.
    fn bsrc_scalar(&self, v: Value, sty: STy) -> BSrc {
        match v {
            Value::Reg(r) => BSrc::Slot(self.layout.offset(r) as u32),
            imm => BSrc::Imm(encode_imm(imm, sty)),
        }
    }

    fn bdst(&self, r: VReg) -> BDst {
        BDst { off: self.layout.offset(r) as u32, w: self.layout.width(r) as u32 }
    }

    /// Pre-baked charges for one source instruction in a block of kind
    /// `bk` — exactly what the tree-walk computes per dynamic instruction.
    fn meta_of(&self, inst: &Inst, bk: BlockKind) -> OpMeta {
        let cost = inst_cost(inst, self.model, self.info);
        debug_assert!(cost <= u32::MAX as u64, "instruction cost overflows the µop encoding");
        let (mut flags, mut bytes) = (0u8, 0u8);
        match inst {
            Inst::Load { ty, .. } => {
                flags |= F_LOAD;
                if bk == BlockKind::EntryHandler {
                    flags |= F_RESTORE;
                    bytes = ty.size_bytes() as u8;
                }
            }
            Inst::Store { ty, .. } => {
                flags |= F_STORE;
                if bk == BlockKind::ExitHandler {
                    flags |= F_SPILL;
                    bytes = ty.size_bytes() as u8;
                }
            }
            _ => {}
        }
        OpMeta { cost: cost as u32, flops: inst_flops(inst) as u32, flags, bytes }
    }

    fn lower_block(&mut self, block: &dpvk_ir::Block) {
        let bk = block.kind;
        let term = TermInfo {
            cost: term_cost(&block.term) as u32,
            insts: block.insts.len() as u32 + 1,
            overhead: bk != BlockKind::Body,
        };
        self.stats.source_insts += block.insts.len() as u64 + 1;

        let n = block.insts.len();
        let mut term_consumed = false;
        let mut i = 0;
        while i < n {
            let inst = &block.insts[i];
            if i + 1 == n {
                if let Some(op) = self.try_cmp_br(inst, &block.term, term, bk) {
                    self.code.push(op);
                    term_consumed = true;
                    i += 1;
                    continue;
                }
            }
            if i + 1 < n {
                if let Some(op) = self.try_fuse_pair(inst, &block.insts[i + 1], bk) {
                    self.code.push(op);
                    i += 2;
                    continue;
                }
            }
            let meta = self.meta_of(inst, bk);
            let kind = self.lower_inst(inst);
            self.code.push(Op { meta, kind });
            i += 1;
        }
        if !term_consumed {
            let kind = self.lower_term(&block.term, term);
            self.code.push(Op { meta: OpMeta::default(), kind });
        }
    }

    /// Fuse a block-final scalar `Cmp` with a `CondBr` on its predicate.
    /// The predicate write is elided when the branch is its only reader.
    fn try_cmp_br(&mut self, inst: &Inst, t: &Term, term: TermInfo, bk: BlockKind) -> Option<Op> {
        let (Inst::Cmp { pred, ty, signed, dst, a, b }, Term::CondBr { cond, taken, fall }) =
            (inst, t)
        else {
            return None;
        };
        if ty.is_vector() || cond.as_reg()?.index() != dst.index() {
            return None;
        }
        let keep = self.use_counts[dst.index()] > 1;
        self.stats.fused_cmp_br += 1;
        Some(Op {
            meta: self.meta_of(inst, bk),
            kind: OpKind::CmpBr {
                pred: *pred,
                sty: ty.scalar,
                signed: *signed,
                a: self.bsrc(*a, ty.scalar),
                b: self.bsrc(*b, ty.scalar),
                dst: keep.then(|| self.bdst(*dst)),
                taken: taken.0,
                fall: fall.0,
                term,
            },
        })
    }

    /// Fuse adjacent scalar `Bin`+`Bin` or `Load`+`Bin` pairs where the
    /// second instruction reads the first's result; the forwarded value
    /// travels through [`BSrc::Prev`] and the intermediate register write
    /// is elided when the pair's consumer is its only reader.
    fn try_fuse_pair(&mut self, first: &Inst, second: &Inst, bk: BlockKind) -> Option<Op> {
        let Inst::Bin { op: op2, ty: ty2, signed: sg2, dst: dst2, a: a2, b: b2 } = second else {
            return None;
        };
        if ty2.is_vector() {
            return None;
        }
        let dst1 = match first {
            Inst::Bin { ty, dst, .. } if !ty.is_vector() => *dst,
            Inst::Load { dst, .. } => *dst,
            _ => return None,
        };
        let feeds = |v: &Value| matches!(v.as_reg(), Some(r) if r.index() == dst1.index());
        let reads = feeds(a2) as u64 + feeds(b2) as u64;
        if reads == 0 {
            return None;
        }
        let kept = (self.use_counts[dst1.index()] > reads).then(|| self.bdst(dst1));
        let fwd = |this: &Self, v: &Value| {
            if feeds(v) {
                BSrc::Prev
            } else {
                this.bsrc(*v, ty2.scalar)
            }
        };
        let (a2, b2) = (fwd(self, a2), fwd(self, b2));
        let (dst2, meta2) = (self.bdst(*dst2), self.meta_of(second, bk));
        let meta = self.meta_of(first, bk);
        let kind = match first {
            Inst::Bin { op: op1, ty: ty1, signed: sg1, a: a1, b: b1, .. } => {
                self.stats.fused_bin_bin += 1;
                OpKind::BinBin {
                    op1: *op1,
                    sty1: ty1.scalar,
                    sg1: *sg1,
                    a1: self.bsrc(*a1, ty1.scalar),
                    b1: self.bsrc(*b1, ty1.scalar),
                    dst1: kept,
                    op2: *op2,
                    sty2: ty2.scalar,
                    sg2: *sg2,
                    a2,
                    b2,
                    dst2,
                    meta2,
                }
            }
            Inst::Load { ty, space, addr, .. } => {
                self.stats.fused_load_bin += 1;
                OpKind::LoadBin {
                    sty1: *ty,
                    space: *space,
                    addr: self.bsrc_scalar(*addr, STy::I64),
                    dst1: kept,
                    op2: *op2,
                    sty2: ty2.scalar,
                    sg2: *sg2,
                    a2,
                    b2,
                    dst2,
                    meta2,
                }
            }
            _ => unreachable!(),
        };
        Some(Op { meta, kind })
    }

    /// Collapse per-lane glue runs in the block lowered at
    /// `code[start..]` into run superinstructions.
    ///
    /// The specializer scalarizes vector memory access and lane shuffles
    /// into per-lane µop sequences — `Extract` spreads, `Insert` packs,
    /// `Load`/`Store` fan-outs, `Mov` copies and `CtxRead` reads — whose
    /// slots and lane indices advance by a fixed stride. Each matched run
    /// becomes one µop that replays the components in original order
    /// (one charge/tick/poll per component, identical writes), so a
    /// width-4 gather costs one dispatch instead of eight.
    ///
    /// Runs never span blocks and a block's first µop can only *start* a
    /// run, so block-start indices recorded before this pass stay valid.
    fn fuse_runs(&mut self, start: usize) {
        if self.code.len() - start < 2 {
            return;
        }
        let mut out: Vec<Op> = Vec::with_capacity(self.code.len() - start);
        let mut i = start;
        while i < self.code.len() {
            if let Some((op, consumed)) = try_run(&self.code[i..]) {
                self.stats.fused_runs += 1;
                out.push(op);
                i += consumed;
            } else {
                out.push(self.code[i]);
                i += 1;
            }
        }
        self.code.truncate(start);
        self.code.append(&mut out);
    }

    fn lower_inst(&self, inst: &Inst) -> OpKind {
        let wid = |ty: &Type| if ty.is_vector() { ty.width } else { 1 };
        match inst {
            Inst::Bin { op, ty, signed, dst, a, b } => OpKind::Bin {
                op: *op,
                sty: ty.scalar,
                signed: *signed,
                w: wid(ty),
                dst: self.bdst(*dst),
                a: self.bsrc(*a, ty.scalar),
                b: self.bsrc(*b, ty.scalar),
            },
            Inst::Un { op, ty, dst, a } => OpKind::Un {
                op: *op,
                sty: ty.scalar,
                w: wid(ty),
                dst: self.bdst(*dst),
                a: self.bsrc(*a, ty.scalar),
            },
            Inst::Fma { ty, dst, a, b, c } => OpKind::Fma {
                sty: ty.scalar,
                w: wid(ty),
                dst: self.bdst(*dst),
                a: self.bsrc(*a, ty.scalar),
                b: self.bsrc(*b, ty.scalar),
                c: self.bsrc(*c, ty.scalar),
            },
            Inst::Cmp { pred, ty, signed, dst, a, b } => OpKind::Cmp {
                pred: *pred,
                sty: ty.scalar,
                signed: *signed,
                w: wid(ty),
                dst: self.bdst(*dst),
                a: self.bsrc(*a, ty.scalar),
                b: self.bsrc(*b, ty.scalar),
            },
            Inst::Select { ty, dst, cond, a, b } => OpKind::Select {
                w: wid(ty),
                dst: self.bdst(*dst),
                cond: self.bsrc(*cond, STy::I1),
                a: self.bsrc(*a, ty.scalar),
                b: self.bsrc(*b, ty.scalar),
            },
            Inst::Cvt { to, from, signed, width, dst, a } => OpKind::Cvt {
                to: *to,
                from: *from,
                signed: *signed,
                w: *width,
                dst: self.bdst(*dst),
                a: self.bsrc(*a, *from),
            },
            Inst::Load { ty, space, dst, addr } => OpKind::Load {
                sty: *ty,
                space: *space,
                dst: self.bdst(*dst),
                addr: self.bsrc_scalar(*addr, STy::I64),
            },
            Inst::Store { ty, space, addr, value } => OpKind::Store {
                sty: *ty,
                space: *space,
                addr: self.bsrc_scalar(*addr, STy::I64),
                value: self.bsrc_scalar(*value, *ty),
            },
            Inst::Atom { ty, space, op, signed, dst, addr, a, b } => OpKind::Atom {
                sty: *ty,
                space: *space,
                op: *op,
                signed: *signed,
                dst: self.bdst(*dst),
                addr: self.bsrc_scalar(*addr, STy::I64),
                a: self.bsrc_scalar(*a, *ty),
                b: b.map(|v| self.bsrc_scalar(v, *ty)),
            },
            Inst::Insert { ty, dst, vec, elem, lane } => OpKind::Insert {
                w: ty.width,
                dst: self.bdst(*dst),
                vec: match vec {
                    // In-place insert: the other lanes are already there.
                    Value::Reg(r) if r.index() == dst.index() => None,
                    v => Some(self.bsrc(*v, ty.scalar)),
                },
                elem: self.bsrc_scalar(*elem, ty.scalar),
                lane: *lane,
            },
            Inst::Extract { ty, dst, vec, lane } => OpKind::Extract {
                dst: self.bdst(*dst),
                vec: self.bsrc(*vec, ty.scalar),
                lane: *lane,
            },
            Inst::Splat { ty, dst, a } => {
                OpKind::Splat { dst: self.bdst(*dst), a: self.bsrc_scalar(*a, ty.scalar) }
            }
            Inst::Reduce { op, ty, dst, vec } => OpKind::Reduce {
                op: *op,
                sty: ty.scalar,
                w: ty.width,
                dst: self.bdst(*dst),
                vec: self.bsrc(*vec, ty.scalar),
            },
            Inst::CtxRead { field, lane, dst } => {
                OpKind::CtxRead { field: *field, lane: *lane, dst: self.bdst(*dst) }
            }
            Inst::SetResumePoint { lane, value } => match value {
                Value::Reg(r) => OpKind::SetRpReg {
                    lane: *lane,
                    slot: self.layout.offset(*r) as u32,
                    sty: self.f.reg_type(*r).scalar,
                },
                Value::ImmI(i) => OpKind::SetRpImm { lane: *lane, id: *i },
                Value::ImmF(_) => OpKind::Unsupported { what: "float resume point" },
            },
            Inst::SetResumeStatus { status } => OpKind::SetStatus { status: *status },
            Inst::Vote { dst, a, .. } => {
                OpKind::Vote { dst: self.bdst(*dst), a: self.bsrc_scalar(*a, STy::I1) }
            }
            Inst::Mov { ty, dst, a } => {
                if ty.is_vector() {
                    OpKind::MovVec {
                        w: ty.width,
                        off: self.layout.offset(*dst) as u32,
                        a: self.bsrc(*a, ty.scalar),
                    }
                } else {
                    OpKind::MovScalar { dst: self.bdst(*dst), a: self.bsrc_scalar(*a, ty.scalar) }
                }
            }
        }
    }

    /// Lower a terminator; branch targets hold *block ids* until
    /// [`Decoder::patch_targets`] rewrites them to µop indices.
    fn lower_term(&mut self, t: &Term, term: TermInfo) -> OpKind {
        match t {
            Term::Br(b) => OpKind::Br { target: b.0, term },
            Term::CondBr { cond, taken, fall } => OpKind::CondBr {
                cond: self.bsrc_scalar(*cond, STy::I1),
                taken: taken.0,
                fall: fall.0,
                term,
            },
            Term::Switch { value, cases, default } => {
                let start = self.cases.len() as u32;
                self.cases.extend(cases.iter().map(|(case, b)| (*case, b.0)));
                let val = match value {
                    Value::Reg(r) => SwitchVal::Reg {
                        slot: self.layout.offset(*r) as u32,
                        sty: self.f.reg_type(*r).scalar,
                    },
                    Value::ImmI(i) => SwitchVal::Imm(*i),
                    Value::ImmF(_) => SwitchVal::BadFloat,
                };
                OpKind::Switch { val, cases: (start, cases.len() as u32), default: default.0, term }
            }
            Term::Ret => OpKind::Ret { term },
        }
    }

    /// Rewrite every branch/switch target from a block id to the µop
    /// index where that block starts.
    fn patch_targets(&mut self, block_start: &[u32]) {
        let at = |b: &mut u32| *b = block_start[*b as usize];
        for op in &mut self.code {
            match &mut op.kind {
                OpKind::Br { target, .. } => at(target),
                OpKind::CondBr { taken, fall, .. } | OpKind::CmpBr { taken, fall, .. } => {
                    at(taken);
                    at(fall);
                }
                OpKind::Switch { default, .. } => at(default),
                _ => {}
            }
        }
        for (_, target) in &mut self.cases {
            at(target);
        }
    }
}

/// Match one glue run starting at `ops[0]`; returns the fused run µop
/// and how many source µops it covers, or `None`. All components of a
/// run must carry identical [`OpMeta`] charges so the run can replay one
/// shared meta per component.
fn try_run(ops: &[Op]) -> Option<(Op, usize)> {
    match ops[0].kind {
        // An address-lane `Extract` may open either a store fan-out
        // (interleaved with `Store`) or a plain lane spread.
        OpKind::Extract { .. } => try_store_run(ops).or_else(|| try_extract_run(ops)),
        OpKind::Insert { .. } => try_insert_run(ops),
        OpKind::MovScalar { .. } => try_mov_run(ops),
        OpKind::Load { .. } => try_load_run(ops),
        OpKind::CtxRead { .. } => try_ctx_run(ops),
        _ => None,
    }
}

/// `Extract` spread: lanes `l0..l0+n` of one vector into consecutive
/// width-1 slots.
fn try_extract_run(ops: &[Op]) -> Option<(Op, usize)> {
    let OpKind::Extract { dst: BDst { off: d0, w: 1 }, vec: BSrc::Lanes(v), lane: l0 } =
        ops[0].kind
    else {
        return None;
    };
    let meta = ops[0].meta;
    let mut n = 1;
    while n < ops.len() {
        match ops[n].kind {
            OpKind::Extract { dst: BDst { off, w: 1 }, vec: BSrc::Lanes(v2), lane }
                if v2 == v
                    && off == d0 + n as u32
                    && lane == l0 + n as u32
                    && ops[n].meta == meta =>
            {
                n += 1;
            }
            _ => break,
        }
    }
    (n >= 2).then(|| {
        let kind = OpKind::CopyRun { n: n as u32, src: v + l0, sstride: 1, dst: d0, prefill: None };
        (Op { meta, kind }, n)
    })
}

/// `Insert` pack: lanes `0..n` of one vector register filled from slots
/// advancing by stride 0 (a broadcast) or 1 (a gather of temporaries).
fn try_insert_run(ops: &[Op]) -> Option<(Op, usize)> {
    let OpKind::Insert { w, dst, vec, elem: BSrc::Slot(e0), lane: 0 } = ops[0].kind else {
        return None;
    };
    let meta = ops[0].meta;
    let follows = |op: &Op, i: u32, e: u32| {
        matches!(op.kind,
            OpKind::Insert { w: w2, dst: d2, vec: None, elem: BSrc::Slot(e2), lane }
                if w2 == w && d2.off == dst.off && d2.w == dst.w && lane == i && e2 == e)
            && op.meta == meta
    };
    let second = ops.get(1)?;
    let sstride = if follows(second, 1, e0) {
        0
    } else if follows(second, 1, e0 + 1) {
        1
    } else {
        return None;
    };
    let mut n = 2;
    while n < ops.len() && follows(&ops[n], n as u32, e0 + n as u32 * sstride) {
        n += 1;
    }
    let prefill = vec.map(|v| (v, w));
    let kind = OpKind::CopyRun { n: n as u32, src: e0, sstride, dst: dst.off, prefill };
    Some((Op { meta, kind }, n))
}

/// Scalar `Mov` fan-out: consecutive width-1 destinations from one
/// source slot (stride 0) or a consecutive slot range (stride 1).
fn try_mov_run(ops: &[Op]) -> Option<(Op, usize)> {
    let OpKind::MovScalar { dst: BDst { off: d0, w: 1 }, a: BSrc::Slot(s0) } = ops[0].kind else {
        return None;
    };
    let meta = ops[0].meta;
    let follows = |op: &Op, i: u32, s: u32| {
        matches!(op.kind,
            OpKind::MovScalar { dst: BDst { off, w: 1 }, a: BSrc::Slot(s2) }
                if off == d0 + i && s2 == s)
            && op.meta == meta
    };
    let second = ops.get(1)?;
    let sstride = if follows(second, 1, s0) {
        0
    } else if follows(second, 1, s0 + 1) {
        1
    } else {
        return None;
    };
    let mut n = 2;
    while n < ops.len() && follows(&ops[n], n as u32, s0 + n as u32 * sstride) {
        n += 1;
    }
    let kind = OpKind::CopyRun { n: n as u32, src: s0, sstride, dst: d0, prefill: None };
    Some((Op { meta, kind }, n))
}

/// Scalar `Load` fan-out: consecutive address slots into consecutive
/// width-1 destinations, one memory space and type.
fn try_load_run(ops: &[Op]) -> Option<(Op, usize)> {
    let OpKind::Load { sty, space, dst: BDst { off: d0, w: 1 }, addr: BSrc::Slot(a0) } =
        ops[0].kind
    else {
        return None;
    };
    let meta = ops[0].meta;
    let mut n = 1;
    while n < ops.len() {
        match ops[n].kind {
            OpKind::Load {
                sty: sty2,
                space: sp2,
                dst: BDst { off, w: 1 },
                addr: BSrc::Slot(a),
            } if sty2 == sty
                && sp2 == space
                && off == d0 + n as u32
                && a == a0 + n as u32
                && ops[n].meta == meta =>
            {
                n += 1;
            }
            _ => break,
        }
    }
    (n >= 2).then_some((
        Op { meta, kind: OpKind::LoadRun { n: n as u32, sty, space, addr: a0, dst: d0 } },
        n,
    ))
}

/// Store fan-out: interleaved `(Extract addr-lane, Store)` pairs over
/// the lanes of one address vector, values advancing by stride 0 or 1.
fn try_store_run(ops: &[Op]) -> Option<(Op, usize)> {
    type Pair = (u32, u32, STy, dpvk_ir::Space, u32, OpMeta, OpMeta);
    let pair = |i: usize| -> Option<Pair> {
        let x = ops.get(2 * i)?;
        let s = ops.get(2 * i + 1)?;
        let OpKind::Extract { dst: BDst { off: t, w: 1 }, vec: BSrc::Lanes(v), lane } = x.kind
        else {
            return None;
        };
        let OpKind::Store { sty, space, addr: BSrc::Slot(a), value: BSrc::Slot(val) } = s.kind
        else {
            return None;
        };
        (lane == i as u32 && a == t).then_some((t, v, sty, space, val, x.meta, s.meta))
    };
    let (t0, v, sty, space, v0, xmeta, smeta) = pair(0)?;
    let matches_at = |p: &Pair, i: u32, vstride: u32| {
        let &(t, v2, sty2, space2, val, xm, sm) = p;
        v2 == v
            && t == t0 + i
            && sty2 == sty
            && space2 == space
            && val == v0 + i * vstride
            && xm == xmeta
            && sm == smeta
    };
    let second = pair(1)?;
    let vstride = if matches_at(&second, 1, 0) {
        0
    } else if matches_at(&second, 1, 1) {
        1
    } else {
        return None;
    };
    let mut n = 2;
    while let Some(p) = pair(n) {
        if !matches_at(&p, n as u32, vstride) {
            break;
        }
        n += 1;
    }
    let kind =
        OpKind::StoreRun { n: n as u32, sty, space, avec: v, atmp: t0, val: v0, vstride, smeta };
    Some((Op { meta: xmeta, kind }, 2 * n))
}

/// Per-lane `CtxRead` fan-out: one field over lanes `0..n` into
/// consecutive width-1 slots.
fn try_ctx_run(ops: &[Op]) -> Option<(Op, usize)> {
    let OpKind::CtxRead { field, lane: 0, dst: BDst { off: d0, w: 1 } } = ops[0].kind else {
        return None;
    };
    let meta = ops[0].meta;
    let mut n = 1;
    while n < ops.len() {
        match ops[n].kind {
            OpKind::CtxRead { field: f2, lane, dst: BDst { off, w: 1 } }
                if f2 == field
                    && lane == n as u32
                    && off == d0 + n as u32
                    && ops[n].meta == meta =>
            {
                n += 1;
            }
            _ => break,
        }
    }
    (n >= 2).then_some((Op { meta, kind: OpKind::CtxReadRun { field, n: n as u32, dst: d0 } }, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::execute_warp_bytecode;
    use crate::context::ThreadContext;
    use crate::frame::RegFrame;
    use crate::interp::{execute_warp, ExecLimits};
    use crate::memory::{GlobalMem, MemAccess};
    use crate::stats::ExecStats;
    use dpvk_ir::{BinOp, Block, BlockId, CmpPred, Space};

    /// Run `f` under both engines against separate memories and assert
    /// outcome, stats, memory image and resume points all agree.
    fn assert_engines_agree(f: &Function) {
        let model = MachineModel::sandybridge_sse();
        let info = CostInfo::analyze(f, &model);
        let layout = FrameLayout::of(f);
        let program = BytecodeProgram::decode(f, &layout, &model, &info);

        let mk_ctxs = || -> Vec<ThreadContext> {
            (0..f.warp_size)
                .map(|i| ThreadContext::new([i, 0, 0], [f.warp_size, 1, 1], [0; 3], [1, 1, 1]))
                .collect()
        };
        let run_tree = |g: &GlobalMem| {
            let mut ctxs = mk_ctxs();
            let (mut shared, mut local) = (vec![0u8; 512], vec![0u8; 512]);
            let mut mem = MemAccess {
                global: g,
                shared: &mut shared,
                local: &mut local,
                param: &[],
                cbank: &[],
            };
            let mut stats = ExecStats::default();
            let r = execute_warp(
                f,
                &info,
                &model,
                &mut ctxs,
                0,
                &mut mem,
                &mut stats,
                &ExecLimits::default(),
                None,
            );
            (r, stats, ctxs)
        };
        let run_bc = |g: &GlobalMem| {
            let mut ctxs = mk_ctxs();
            let (mut shared, mut local) = (vec![0u8; 512], vec![0u8; 512]);
            let mut mem = MemAccess {
                global: g,
                shared: &mut shared,
                local: &mut local,
                param: &[],
                cbank: &[],
            };
            let mut stats = ExecStats::default();
            let mut scratch = RegFrame::new();
            let r = execute_warp_bytecode(
                &program,
                &mut scratch,
                &mut ctxs,
                0,
                &mut mem,
                &mut stats,
                &ExecLimits::default(),
                None,
            );
            (r, stats, ctxs)
        };

        let (g1, g2) = (GlobalMem::new(256), GlobalMem::new(256));
        let (r1, s1, c1) = run_tree(&g1);
        let (r2, s2, c2) = run_bc(&g2);
        assert_eq!(r1, r2, "outcomes diverge");
        assert_eq!(s1, s2, "exec stats diverge");
        assert_eq!(
            c1.iter().map(|c| c.resume_point).collect::<Vec<_>>(),
            c2.iter().map(|c| c.resume_point).collect::<Vec<_>>(),
            "resume points diverge"
        );
        let (mut b1, mut b2) = (vec![0u8; g1.size()], vec![0u8; g2.size()]);
        g1.copy_out(0, &mut b1).unwrap();
        g2.copy_out(0, &mut b2).unwrap();
        assert_eq!(b1, b2, "memory images diverge");
    }

    /// The `loop_with_condbr` kernel from the interp tests: exercises
    /// `Cmp`+`CondBr` fusion, `Bin`+`Bin` fusion, and the loop back-edge.
    fn sum_loop() -> Function {
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I32);
        let i = f.new_reg(t);
        let acc = f.new_reg(t);
        let p = f.new_reg(Type::scalar(STy::I1));
        let mut entry = Block::new("entry");
        entry.insts.push(Inst::Mov { ty: t, dst: i, a: Value::ImmI(0) });
        entry.insts.push(Inst::Mov { ty: t, dst: acc, a: Value::ImmI(0) });
        let mut head = Block::new("head");
        head.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: t,
            signed: false,
            dst: acc,
            a: Value::Reg(acc),
            b: Value::Reg(i),
        });
        head.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: t,
            signed: false,
            dst: i,
            a: Value::Reg(i),
            b: Value::ImmI(1),
        });
        head.insts.push(Inst::Cmp {
            pred: CmpPred::Lt,
            ty: t,
            signed: true,
            dst: p,
            a: Value::Reg(i),
            b: Value::ImmI(10),
        });
        let mut tail = Block::new("tail");
        tail.insts.push(Inst::Store {
            ty: STy::I32,
            space: Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(acc),
        });
        tail.term = Term::Ret;
        let e = f.add_block(entry);
        let h = f.add_block(Block::new("p"));
        let tl = f.add_block(tail);
        head.term = Term::CondBr { cond: Value::Reg(p), taken: h, fall: tl };
        f.blocks[h.index()] = head;
        f.block_mut(e).term = Term::Br(h);
        f
    }

    #[test]
    fn loop_kernel_matches_tree_walk() {
        assert_engines_agree(&sum_loop());
    }

    #[test]
    fn fusion_is_applied_and_preserves_results() {
        let f = sum_loop();
        let model = MachineModel::sandybridge_sse();
        let info = CostInfo::analyze(&f, &model);
        let layout = FrameLayout::of(&f);
        let program = BytecodeProgram::decode(&f, &layout, &model, &info);
        // `acc += i; i += 1` does not chain (the second never reads
        // `acc`), but the block-final compare fuses with its branch; the
        // predicate has no other use, so its write is elided.
        assert_eq!(program.stats.fused_cmp_br, 1, "{:?}", program.stats);
        assert_eq!(program.stats.fused_bin_bin, 0, "{:?}", program.stats);
        assert!(
            program.code.iter().any(|op| matches!(op.kind, OpKind::CmpBr { dst: None, .. })),
            "single-use predicate write should be elided"
        );
    }

    #[test]
    fn chained_arithmetic_fuses_and_matches_tree_walk() {
        // global[4] = (global[0] + 5) * 3 + 7, all through single-use
        // temporaries: one Load+Bin pair and one Bin+Bin pair fuse, with
        // every intermediate write elided.
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I32);
        let x = f.new_reg(t);
        let y = f.new_reg(t);
        let a = f.new_reg(t);
        let out = f.new_reg(t);
        let mut b = Block::new("entry");
        b.insts.push(Inst::Load {
            ty: STy::I32,
            space: Space::Global,
            dst: x,
            addr: Value::ImmI(0),
        });
        b.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: t,
            signed: false,
            dst: y,
            a: Value::Reg(x),
            b: Value::ImmI(5),
        });
        b.insts.push(Inst::Bin {
            op: BinOp::Mul,
            ty: t,
            signed: false,
            dst: a,
            a: Value::Reg(y),
            b: Value::ImmI(3),
        });
        b.insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: t,
            signed: false,
            dst: out,
            a: Value::Reg(a),
            b: Value::ImmI(7),
        });
        b.insts.push(Inst::Store {
            ty: STy::I32,
            space: Space::Global,
            addr: Value::ImmI(4),
            value: Value::Reg(out),
        });
        b.term = Term::Ret;
        f.add_block(b);

        let model = MachineModel::sandybridge_sse();
        let info = CostInfo::analyze(&f, &model);
        let layout = FrameLayout::of(&f);
        let program = BytecodeProgram::decode(&f, &layout, &model, &info);
        assert_eq!(program.stats.fused_load_bin, 1, "{:?}", program.stats);
        assert_eq!(program.stats.fused_bin_bin, 1, "{:?}", program.stats);
        assert!(
            program.code.iter().any(|op| matches!(op.kind, OpKind::LoadBin { dst1: None, .. })),
            "single-use load result should be elided"
        );
        assert_engines_agree(&f);
    }

    #[test]
    fn multi_use_predicate_write_is_kept() {
        // The predicate is read again after the branch, so the fused
        // compare-branch must still write it.
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I32);
        let p = f.new_reg(Type::scalar(STy::I1));
        let out = f.new_reg(t);
        let mut entry = Block::new("entry");
        entry.insts.push(Inst::Cmp {
            pred: CmpPred::Lt,
            ty: t,
            signed: true,
            dst: p,
            a: Value::ImmI(1),
            b: Value::ImmI(2),
        });
        let mut join = Block::new("join");
        join.insts.push(Inst::Cvt {
            to: STy::I32,
            from: STy::I1,
            signed: false,
            width: 1,
            dst: out,
            a: Value::Reg(p),
        });
        join.insts.push(Inst::Store {
            ty: STy::I32,
            space: Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(out),
        });
        join.term = Term::Ret;
        let e = f.add_block(entry);
        let j = f.add_block(join);
        f.block_mut(e).term = Term::CondBr { cond: Value::Reg(p), taken: j, fall: j };

        let model = MachineModel::sandybridge_sse();
        let info = CostInfo::analyze(&f, &model);
        let layout = FrameLayout::of(&f);
        let program = BytecodeProgram::decode(&f, &layout, &model, &info);
        assert_eq!(program.stats.fused_cmp_br, 1);
        assert!(
            program.code.iter().any(|op| matches!(op.kind, OpKind::CmpBr { dst: Some(_), .. })),
            "multi-use predicate write must be kept"
        );
        assert_engines_agree(&f);
    }

    #[test]
    fn switch_targets_resolve_to_uop_indices() {
        let mut f = Function::new("t", 1);
        let t = Type::scalar(STy::I32);
        let id = f.new_reg(t);
        let mut entry = Block::new("sched");
        entry.insts.push(Inst::CtxRead { field: dpvk_ir::CtxField::EntryId, lane: 0, dst: id });
        entry.term = Term::Switch {
            value: Value::Reg(id),
            cases: vec![(0, BlockId(1)), (5, BlockId(2))],
            default: BlockId(1),
        };
        f.add_block(entry);
        for (name, v) in [("zero", 111i64), ("five", 222)] {
            let mut b = Block::new(name);
            b.insts.push(Inst::Store {
                ty: STy::I32,
                space: Space::Global,
                addr: Value::ImmI(0),
                value: Value::ImmI(v),
            });
            b.term = Term::Ret;
            f.add_block(b);
        }
        assert_engines_agree(&f);
    }

    #[test]
    fn spin_loop_still_polls_deadline() {
        let mut f = Function::new("spin", 1);
        let mut b = Block::new("spin");
        b.term = Term::Br(BlockId(0));
        f.add_block(b);
        let model = MachineModel::default();
        let info = CostInfo::zero();
        let layout = FrameLayout::of(&f);
        let program = BytecodeProgram::decode(&f, &layout, &model, &info);
        let g = GlobalMem::new(4);
        let mut ctxs = vec![ThreadContext::new([0; 3], [1, 1, 1], [0; 3], [1, 1, 1])];
        let (mut shared, mut local) = (vec![], vec![]);
        let mut mem = MemAccess {
            global: &g,
            shared: &mut shared,
            local: &mut local,
            param: &[],
            cbank: &[],
        };
        let mut stats = ExecStats::default();
        let mut scratch = RegFrame::new();
        let limits = ExecLimits {
            deadline: Some(std::time::Instant::now()),
            check_interval: 16,
            ..Default::default()
        };
        let err = execute_warp_bytecode(
            &program,
            &mut scratch,
            &mut ctxs,
            0,
            &mut mem,
            &mut stats,
            &limits,
            None,
        )
        .unwrap_err();
        assert_eq!(err, crate::error::VmError::Deadline);
    }

    #[test]
    fn vector_kernels_match_tree_walk() {
        let mut f = Function::new("t", 4);
        let vt = Type::vector(STy::F32, 4);
        let v = f.new_reg(vt);
        let e = f.new_reg(Type::scalar(STy::F32));
        let mut b = Block::new("entry");
        b.insts.push(Inst::Splat { ty: vt, dst: v, a: Value::ImmF(2.0) });
        b.insts.push(Inst::Fma {
            ty: vt,
            dst: v,
            a: Value::Reg(v),
            b: Value::Reg(v),
            c: Value::Reg(v),
        });
        b.insts.push(Inst::Extract { ty: vt, dst: e, vec: Value::Reg(v), lane: 3 });
        b.insts.push(Inst::Store {
            ty: STy::F32,
            space: Space::Global,
            addr: Value::ImmI(0),
            value: Value::Reg(e),
        });
        b.term = Term::Ret;
        f.add_block(b);
        assert_engines_agree(&f);
    }
}
