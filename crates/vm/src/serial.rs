//! Byte-level serialization of decoded [`BytecodeProgram`]s.
//!
//! The persistent translation cache in `dpvk-core` stores the validated
//! µop stream of each compiled specialization on disk, so a cold process
//! rehydrates warm kernels without re-running translate/specialize/decode.
//! This module is the µop-level codec: every [`OpKind`] variant, operand
//! source/destination, pre-baked [`OpMeta`] charge, and terminator retire
//! record round-trips bit-exactly.
//!
//! Decoding untrusted bytes is safe: all reads are bounds-checked (via
//! [`dpvk_ir::serial::Reader`]), every tag validated, and the decoded
//! program is re-run through [`BytecodeProgram::validate`] — the same
//! slot/target bounds pass a freshly decoded program gets — before it is
//! returned. The execution loop elides per-access bounds checks on the
//! strength of that pass, so a program that skips it must never escape
//! this module.
//!
//! The profiler identity ([`BytecodeProgram::attach_profile`]) is *not*
//! serialized; callers re-attach it after loading, exactly as the
//! in-memory compile path does after decode.

use std::panic::{self, AssertUnwindSafe};

use dpvk_ir::serial::{
    put_atom_kind, put_bin_op, put_bool, put_cmp_pred, put_ctx_field, put_i64, put_reduce_op,
    put_resume_status, put_space, put_sty, put_u32, put_u64, put_u8, put_un_op, take_atom_kind,
    take_bin_op, take_cmp_pred, take_ctx_field, take_reduce_op, take_resume_status, take_space,
    take_sty, take_un_op, Reader, SerialError, SerialResult,
};

use crate::bytecode::{
    BDst, BSrc, BytecodeProgram, DecodeStats, Op, OpKind, OpMeta, SwitchVal, TermInfo,
};

/// The one `&'static str` payload the decoder ever emits for
/// [`OpKind::Unsupported`]; decoding maps the serialized string back to
/// it. Unknown strings are treated as corruption.
const UNSUPPORTED_WHATS: &[&str] = &["float resume point"];

fn put_meta(buf: &mut Vec<u8>, m: OpMeta) {
    put_u32(buf, m.cost);
    put_u32(buf, m.flops);
    put_u8(buf, m.flags);
    put_u8(buf, m.bytes);
}

fn take_meta(r: &mut Reader<'_>) -> SerialResult<OpMeta> {
    Ok(OpMeta {
        cost: r.take_u32()?,
        flops: r.take_u32()?,
        flags: r.take_u8()?,
        bytes: r.take_u8()?,
    })
}

fn put_term_info(buf: &mut Vec<u8>, t: TermInfo) {
    put_u32(buf, t.cost);
    put_u32(buf, t.insts);
    put_bool(buf, t.overhead);
}

fn take_term_info(r: &mut Reader<'_>) -> SerialResult<TermInfo> {
    Ok(TermInfo { cost: r.take_u32()?, insts: r.take_u32()?, overhead: r.take_bool()? })
}

fn put_bsrc(buf: &mut Vec<u8>, s: BSrc) {
    match s {
        BSrc::Imm(v) => {
            put_u8(buf, 0);
            put_u64(buf, v);
        }
        BSrc::Slot(o) => {
            put_u8(buf, 1);
            put_u32(buf, o);
        }
        BSrc::Lanes(o) => {
            put_u8(buf, 2);
            put_u32(buf, o);
        }
        BSrc::Prev => put_u8(buf, 3),
    }
}

fn take_bsrc(r: &mut Reader<'_>) -> SerialResult<BSrc> {
    Ok(match r.take_u8()? {
        0 => BSrc::Imm(r.take_u64()?),
        1 => BSrc::Slot(r.take_u32()?),
        2 => BSrc::Lanes(r.take_u32()?),
        3 => BSrc::Prev,
        t => return Err(SerialError::new(format!("invalid BSrc tag {t}"))),
    })
}

fn put_opt_bsrc(buf: &mut Vec<u8>, s: Option<BSrc>) {
    match s {
        Some(s) => {
            put_bool(buf, true);
            put_bsrc(buf, s);
        }
        None => put_bool(buf, false),
    }
}

fn take_opt_bsrc(r: &mut Reader<'_>) -> SerialResult<Option<BSrc>> {
    Ok(if r.take_bool()? { Some(take_bsrc(r)?) } else { None })
}

fn put_bdst(buf: &mut Vec<u8>, d: BDst) {
    put_u32(buf, d.off);
    put_u32(buf, d.w);
}

fn take_bdst(r: &mut Reader<'_>) -> SerialResult<BDst> {
    Ok(BDst { off: r.take_u32()?, w: r.take_u32()? })
}

fn put_opt_bdst(buf: &mut Vec<u8>, d: Option<BDst>) {
    match d {
        Some(d) => {
            put_bool(buf, true);
            put_bdst(buf, d);
        }
        None => put_bool(buf, false),
    }
}

fn take_opt_bdst(r: &mut Reader<'_>) -> SerialResult<Option<BDst>> {
    Ok(if r.take_bool()? { Some(take_bdst(r)?) } else { None })
}

fn put_switch_val(buf: &mut Vec<u8>, v: SwitchVal) {
    match v {
        SwitchVal::Reg { slot, sty } => {
            put_u8(buf, 0);
            put_u32(buf, slot);
            put_sty(buf, sty);
        }
        SwitchVal::Imm(i) => {
            put_u8(buf, 1);
            put_i64(buf, i);
        }
        SwitchVal::BadFloat => put_u8(buf, 2),
    }
}

fn take_switch_val(r: &mut Reader<'_>) -> SerialResult<SwitchVal> {
    Ok(match r.take_u8()? {
        0 => SwitchVal::Reg { slot: r.take_u32()?, sty: take_sty(r)? },
        1 => SwitchVal::Imm(r.take_i64()?),
        2 => SwitchVal::BadFloat,
        t => return Err(SerialError::new(format!("invalid SwitchVal tag {t}"))),
    })
}

fn put_op_kind(buf: &mut Vec<u8>, k: &OpKind) {
    put_u8(buf, k.opcode() as u8);
    match *k {
        OpKind::Bin { op, sty, signed, w, dst, a, b } => {
            put_bin_op(buf, op);
            put_sty(buf, sty);
            put_bool(buf, signed);
            put_u32(buf, w);
            put_bdst(buf, dst);
            put_bsrc(buf, a);
            put_bsrc(buf, b);
        }
        OpKind::Un { op, sty, w, dst, a } => {
            put_un_op(buf, op);
            put_sty(buf, sty);
            put_u32(buf, w);
            put_bdst(buf, dst);
            put_bsrc(buf, a);
        }
        OpKind::Fma { sty, w, dst, a, b, c } => {
            put_sty(buf, sty);
            put_u32(buf, w);
            put_bdst(buf, dst);
            put_bsrc(buf, a);
            put_bsrc(buf, b);
            put_bsrc(buf, c);
        }
        OpKind::Cmp { pred, sty, signed, w, dst, a, b } => {
            put_cmp_pred(buf, pred);
            put_sty(buf, sty);
            put_bool(buf, signed);
            put_u32(buf, w);
            put_bdst(buf, dst);
            put_bsrc(buf, a);
            put_bsrc(buf, b);
        }
        OpKind::Select { w, dst, cond, a, b } => {
            put_u32(buf, w);
            put_bdst(buf, dst);
            put_bsrc(buf, cond);
            put_bsrc(buf, a);
            put_bsrc(buf, b);
        }
        OpKind::Cvt { to, from, signed, w, dst, a } => {
            put_sty(buf, to);
            put_sty(buf, from);
            put_bool(buf, signed);
            put_u32(buf, w);
            put_bdst(buf, dst);
            put_bsrc(buf, a);
        }
        OpKind::Load { sty, space, dst, addr } => {
            put_sty(buf, sty);
            put_space(buf, space);
            put_bdst(buf, dst);
            put_bsrc(buf, addr);
        }
        OpKind::Store { sty, space, addr, value } => {
            put_sty(buf, sty);
            put_space(buf, space);
            put_bsrc(buf, addr);
            put_bsrc(buf, value);
        }
        OpKind::Atom { sty, space, op, signed, dst, addr, a, b } => {
            put_sty(buf, sty);
            put_space(buf, space);
            put_atom_kind(buf, op);
            put_bool(buf, signed);
            put_bdst(buf, dst);
            put_bsrc(buf, addr);
            put_bsrc(buf, a);
            put_opt_bsrc(buf, b);
        }
        OpKind::Insert { w, dst, vec, elem, lane } => {
            put_u32(buf, w);
            put_bdst(buf, dst);
            put_opt_bsrc(buf, vec);
            put_bsrc(buf, elem);
            put_u32(buf, lane);
        }
        OpKind::Extract { dst, vec, lane } => {
            put_bdst(buf, dst);
            put_bsrc(buf, vec);
            put_u32(buf, lane);
        }
        OpKind::Splat { dst, a } | OpKind::Vote { dst, a } | OpKind::MovScalar { dst, a } => {
            put_bdst(buf, dst);
            put_bsrc(buf, a);
        }
        OpKind::Reduce { op, sty, w, dst, vec } => {
            put_reduce_op(buf, op);
            put_sty(buf, sty);
            put_u32(buf, w);
            put_bdst(buf, dst);
            put_bsrc(buf, vec);
        }
        OpKind::CtxRead { field, lane, dst } => {
            put_ctx_field(buf, field);
            put_u32(buf, lane);
            put_bdst(buf, dst);
        }
        OpKind::SetRpImm { lane, id } => {
            put_u32(buf, lane);
            put_i64(buf, id);
        }
        OpKind::SetRpReg { lane, slot, sty } => {
            put_u32(buf, lane);
            put_u32(buf, slot);
            put_sty(buf, sty);
        }
        OpKind::SetStatus { status } => put_resume_status(buf, status),
        OpKind::MovVec { w, off, a } => {
            put_u32(buf, w);
            put_u32(buf, off);
            put_bsrc(buf, a);
        }
        OpKind::Unsupported { what } => {
            let idx = UNSUPPORTED_WHATS.iter().position(|w| *w == what).expect("known what string");
            put_u32(buf, idx as u32);
        }
        OpKind::CmpBr { pred, sty, signed, a, b, dst, taken, fall, term } => {
            put_cmp_pred(buf, pred);
            put_sty(buf, sty);
            put_bool(buf, signed);
            put_bsrc(buf, a);
            put_bsrc(buf, b);
            put_opt_bdst(buf, dst);
            put_u32(buf, taken);
            put_u32(buf, fall);
            put_term_info(buf, term);
        }
        OpKind::BinBin { op1, sty1, sg1, a1, b1, dst1, op2, sty2, sg2, a2, b2, dst2, meta2 } => {
            put_bin_op(buf, op1);
            put_sty(buf, sty1);
            put_bool(buf, sg1);
            put_bsrc(buf, a1);
            put_bsrc(buf, b1);
            put_opt_bdst(buf, dst1);
            put_bin_op(buf, op2);
            put_sty(buf, sty2);
            put_bool(buf, sg2);
            put_bsrc(buf, a2);
            put_bsrc(buf, b2);
            put_bdst(buf, dst2);
            put_meta(buf, meta2);
        }
        OpKind::LoadBin { sty1, space, addr, dst1, op2, sty2, sg2, a2, b2, dst2, meta2 } => {
            put_sty(buf, sty1);
            put_space(buf, space);
            put_bsrc(buf, addr);
            put_opt_bdst(buf, dst1);
            put_bin_op(buf, op2);
            put_sty(buf, sty2);
            put_bool(buf, sg2);
            put_bsrc(buf, a2);
            put_bsrc(buf, b2);
            put_bdst(buf, dst2);
            put_meta(buf, meta2);
        }
        OpKind::CopyRun { n, src, sstride, dst, prefill } => {
            put_u32(buf, n);
            put_u32(buf, src);
            put_u32(buf, sstride);
            put_u32(buf, dst);
            match prefill {
                Some((v, w)) => {
                    put_bool(buf, true);
                    put_bsrc(buf, v);
                    put_u32(buf, w);
                }
                None => put_bool(buf, false),
            }
        }
        OpKind::LoadRun { n, sty, space, addr, dst } => {
            put_u32(buf, n);
            put_sty(buf, sty);
            put_space(buf, space);
            put_u32(buf, addr);
            put_u32(buf, dst);
        }
        OpKind::StoreRun { n, sty, space, avec, atmp, val, vstride, smeta } => {
            put_u32(buf, n);
            put_sty(buf, sty);
            put_space(buf, space);
            put_u32(buf, avec);
            put_u32(buf, atmp);
            put_u32(buf, val);
            put_u32(buf, vstride);
            put_meta(buf, smeta);
        }
        OpKind::CtxReadRun { field, n, dst } => {
            put_ctx_field(buf, field);
            put_u32(buf, n);
            put_u32(buf, dst);
        }
        OpKind::Br { target, term } => {
            put_u32(buf, target);
            put_term_info(buf, term);
        }
        OpKind::CondBr { cond, taken, fall, term } => {
            put_bsrc(buf, cond);
            put_u32(buf, taken);
            put_u32(buf, fall);
            put_term_info(buf, term);
        }
        OpKind::Switch { val, cases, default, term } => {
            put_switch_val(buf, val);
            put_u32(buf, cases.0);
            put_u32(buf, cases.1);
            put_u32(buf, default);
            put_term_info(buf, term);
        }
        OpKind::Ret { term } => put_term_info(buf, term),
    }
}

fn take_op_kind(r: &mut Reader<'_>) -> SerialResult<OpKind> {
    Ok(match r.take_u8()? {
        0 => OpKind::Bin {
            op: take_bin_op(r)?,
            sty: take_sty(r)?,
            signed: r.take_bool()?,
            w: r.take_u32()?,
            dst: take_bdst(r)?,
            a: take_bsrc(r)?,
            b: take_bsrc(r)?,
        },
        1 => OpKind::Un {
            op: take_un_op(r)?,
            sty: take_sty(r)?,
            w: r.take_u32()?,
            dst: take_bdst(r)?,
            a: take_bsrc(r)?,
        },
        2 => OpKind::Fma {
            sty: take_sty(r)?,
            w: r.take_u32()?,
            dst: take_bdst(r)?,
            a: take_bsrc(r)?,
            b: take_bsrc(r)?,
            c: take_bsrc(r)?,
        },
        3 => OpKind::Cmp {
            pred: take_cmp_pred(r)?,
            sty: take_sty(r)?,
            signed: r.take_bool()?,
            w: r.take_u32()?,
            dst: take_bdst(r)?,
            a: take_bsrc(r)?,
            b: take_bsrc(r)?,
        },
        4 => OpKind::Select {
            w: r.take_u32()?,
            dst: take_bdst(r)?,
            cond: take_bsrc(r)?,
            a: take_bsrc(r)?,
            b: take_bsrc(r)?,
        },
        5 => OpKind::Cvt {
            to: take_sty(r)?,
            from: take_sty(r)?,
            signed: r.take_bool()?,
            w: r.take_u32()?,
            dst: take_bdst(r)?,
            a: take_bsrc(r)?,
        },
        6 => OpKind::Load {
            sty: take_sty(r)?,
            space: take_space(r)?,
            dst: take_bdst(r)?,
            addr: take_bsrc(r)?,
        },
        7 => OpKind::Store {
            sty: take_sty(r)?,
            space: take_space(r)?,
            addr: take_bsrc(r)?,
            value: take_bsrc(r)?,
        },
        8 => OpKind::Atom {
            sty: take_sty(r)?,
            space: take_space(r)?,
            op: take_atom_kind(r)?,
            signed: r.take_bool()?,
            dst: take_bdst(r)?,
            addr: take_bsrc(r)?,
            a: take_bsrc(r)?,
            b: take_opt_bsrc(r)?,
        },
        9 => OpKind::Insert {
            w: r.take_u32()?,
            dst: take_bdst(r)?,
            vec: take_opt_bsrc(r)?,
            elem: take_bsrc(r)?,
            lane: r.take_u32()?,
        },
        10 => OpKind::Extract { dst: take_bdst(r)?, vec: take_bsrc(r)?, lane: r.take_u32()? },
        11 => OpKind::Splat { dst: take_bdst(r)?, a: take_bsrc(r)? },
        12 => OpKind::Reduce {
            op: take_reduce_op(r)?,
            sty: take_sty(r)?,
            w: r.take_u32()?,
            dst: take_bdst(r)?,
            vec: take_bsrc(r)?,
        },
        13 => {
            OpKind::CtxRead { field: take_ctx_field(r)?, lane: r.take_u32()?, dst: take_bdst(r)? }
        }
        14 => OpKind::SetRpImm { lane: r.take_u32()?, id: r.take_i64()? },
        15 => OpKind::SetRpReg { lane: r.take_u32()?, slot: r.take_u32()?, sty: take_sty(r)? },
        16 => OpKind::SetStatus { status: take_resume_status(r)? },
        17 => OpKind::Vote { dst: take_bdst(r)?, a: take_bsrc(r)? },
        18 => OpKind::MovVec { w: r.take_u32()?, off: r.take_u32()?, a: take_bsrc(r)? },
        19 => OpKind::MovScalar { dst: take_bdst(r)?, a: take_bsrc(r)? },
        20 => {
            let idx = r.take_u32()? as usize;
            let what = UNSUPPORTED_WHATS
                .get(idx)
                .copied()
                .ok_or_else(|| SerialError::new(format!("unknown Unsupported index {idx}")))?;
            OpKind::Unsupported { what }
        }
        21 => OpKind::CmpBr {
            pred: take_cmp_pred(r)?,
            sty: take_sty(r)?,
            signed: r.take_bool()?,
            a: take_bsrc(r)?,
            b: take_bsrc(r)?,
            dst: take_opt_bdst(r)?,
            taken: r.take_u32()?,
            fall: r.take_u32()?,
            term: take_term_info(r)?,
        },
        22 => OpKind::BinBin {
            op1: take_bin_op(r)?,
            sty1: take_sty(r)?,
            sg1: r.take_bool()?,
            a1: take_bsrc(r)?,
            b1: take_bsrc(r)?,
            dst1: take_opt_bdst(r)?,
            op2: take_bin_op(r)?,
            sty2: take_sty(r)?,
            sg2: r.take_bool()?,
            a2: take_bsrc(r)?,
            b2: take_bsrc(r)?,
            dst2: take_bdst(r)?,
            meta2: take_meta(r)?,
        },
        23 => OpKind::LoadBin {
            sty1: take_sty(r)?,
            space: take_space(r)?,
            addr: take_bsrc(r)?,
            dst1: take_opt_bdst(r)?,
            op2: take_bin_op(r)?,
            sty2: take_sty(r)?,
            sg2: r.take_bool()?,
            a2: take_bsrc(r)?,
            b2: take_bsrc(r)?,
            dst2: take_bdst(r)?,
            meta2: take_meta(r)?,
        },
        24 => OpKind::CopyRun {
            n: r.take_u32()?,
            src: r.take_u32()?,
            sstride: r.take_u32()?,
            dst: r.take_u32()?,
            prefill: if r.take_bool()? { Some((take_bsrc(r)?, r.take_u32()?)) } else { None },
        },
        25 => OpKind::LoadRun {
            n: r.take_u32()?,
            sty: take_sty(r)?,
            space: take_space(r)?,
            addr: r.take_u32()?,
            dst: r.take_u32()?,
        },
        26 => OpKind::StoreRun {
            n: r.take_u32()?,
            sty: take_sty(r)?,
            space: take_space(r)?,
            avec: r.take_u32()?,
            atmp: r.take_u32()?,
            val: r.take_u32()?,
            vstride: r.take_u32()?,
            smeta: take_meta(r)?,
        },
        27 => {
            OpKind::CtxReadRun { field: take_ctx_field(r)?, n: r.take_u32()?, dst: r.take_u32()? }
        }
        28 => OpKind::Br { target: r.take_u32()?, term: take_term_info(r)? },
        29 => OpKind::CondBr {
            cond: take_bsrc(r)?,
            taken: r.take_u32()?,
            fall: r.take_u32()?,
            term: take_term_info(r)?,
        },
        30 => OpKind::Switch {
            val: take_switch_val(r)?,
            cases: (r.take_u32()?, r.take_u32()?),
            default: r.take_u32()?,
            term: take_term_info(r)?,
        },
        31 => OpKind::Ret { term: take_term_info(r)? },
        t => return Err(SerialError::new(format!("invalid OpKind tag {t}"))),
    })
}

/// Encode a program to bytes.
///
/// The profiler tag is intentionally not serialized (it holds a
/// `&'static str`); [`program_from_bytes`] returns a program with no
/// profile attached and callers re-run
/// [`BytecodeProgram::attach_profile`].
pub fn program_to_bytes(p: &BytecodeProgram) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + p.code.len() * 32 + p.cases.len() * 12);
    put_u32(&mut buf, p.warp_size);
    put_u64(&mut buf, p.slots as u64);
    for v in [
        p.stats.ops,
        p.stats.source_insts,
        p.stats.fused_cmp_br,
        p.stats.fused_bin_bin,
        p.stats.fused_load_bin,
        p.stats.fused_runs,
    ] {
        put_u64(&mut buf, v);
    }
    put_u32(&mut buf, p.cases.len() as u32);
    for &(v, t) in &p.cases {
        put_i64(&mut buf, v);
        put_u32(&mut buf, t);
    }
    put_u32(&mut buf, p.code.len() as u32);
    for op in &p.code {
        put_meta(&mut buf, op.meta);
        put_op_kind(&mut buf, &op.kind);
    }
    buf
}

/// Decode a program from bytes and re-validate it.
///
/// Any structural problem — truncation, a bad tag, trailing bytes, or a
/// slot/target bound the validator rejects — is a [`SerialError`];
/// callers treat it as a cache miss.
pub fn program_from_bytes(bytes: &[u8]) -> SerialResult<BytecodeProgram> {
    let mut r = Reader::new(bytes);
    let warp_size = r.take_u32()?;
    if warp_size == 0 {
        return Err(SerialError::new("zero warp size"));
    }
    let slots = r.take_u64()?;
    if slots > u32::MAX as u64 {
        return Err(SerialError::new(format!("implausible slot count {slots}")));
    }
    let mut stats = DecodeStats {
        ops: r.take_u64()?,
        source_insts: r.take_u64()?,
        fused_cmp_br: r.take_u64()?,
        fused_bin_bin: r.take_u64()?,
        fused_load_bin: r.take_u64()?,
        fused_runs: r.take_u64()?,
        vector_ops: 0,
    };
    let ncases = r.take_len(12)?;
    let mut cases = Vec::with_capacity(ncases);
    for _ in 0..ncases {
        let v = r.take_i64()?;
        let t = r.take_u32()?;
        cases.push((v, t));
    }
    let ncode = r.take_len(11)?;
    let mut code = Vec::with_capacity(ncode);
    for _ in 0..ncode {
        let meta = take_meta(&mut r)?;
        let kind = take_op_kind(&mut r)?;
        code.push(Op { meta, kind });
    }
    if !r.is_done() {
        return Err(SerialError::new(format!("{} trailing bytes after program", r.remaining())));
    }
    // Derived, not on the wire: recompute so rehydrated programs carry
    // the same tally as a fresh decode.
    stats.vector_ops = crate::bytecode::count_vector_ops(&code);
    let program =
        BytecodeProgram { code, cases, slots: slots as usize, warp_size, stats, profile: None };
    // The execution loop elides register-file bounds checks because
    // `validate` ran at decode time; re-run it on the decoded program so
    // a corrupted artifact can never reach the unchecked accessors. The
    // validator panics on violation (it guards an internal invariant);
    // here a violation just means bad bytes, so catch it and report an
    // ordinary decode error.
    let ok = panic::catch_unwind(AssertUnwindSafe(|| program.validate())).is_ok();
    if !ok {
        return Err(SerialError::new("decoded program failed validation"));
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostInfo;
    use crate::frame::FrameLayout;
    use crate::machine::MachineModel;
    use dpvk_ir::{
        Block, BlockId, CmpPred, CtxField, Function, Inst, STy, Space, Term, Type, Value,
    };

    /// Build a real program through the production decoder so the sample
    /// exercises fused superinstructions, branches, and the case table.
    fn sample_program() -> BytecodeProgram {
        let mut f = Function::new("serial_sample", 1);
        let tid = f.new_reg(Type::scalar(STy::I32));
        let addr = f.new_reg(Type::scalar(STy::I64));
        let x = f.new_reg(Type::scalar(STy::F32));
        let p = f.new_reg(Type::scalar(STy::I1));

        let mut entry = Block::new("entry");
        entry.insts.push(Inst::CtxRead { field: CtxField::Tid(0), lane: 0, dst: tid });
        entry.insts.push(Inst::Cvt {
            to: STy::I64,
            from: STy::I32,
            signed: false,
            width: 1,
            dst: addr,
            a: Value::Reg(tid),
        });
        entry.insts.push(Inst::Bin {
            op: dpvk_ir::BinOp::Mul,
            ty: Type::scalar(STy::I64),
            signed: false,
            dst: addr,
            a: Value::Reg(addr),
            b: Value::ImmI(4),
        });
        entry.insts.push(Inst::Load {
            ty: STy::F32,
            space: Space::Global,
            dst: x,
            addr: Value::Reg(addr),
        });
        entry.insts.push(Inst::Cmp {
            pred: CmpPred::Lt,
            ty: Type::scalar(STy::F32),
            signed: false,
            dst: p,
            a: Value::Reg(x),
            b: Value::ImmF(0.5),
        });
        entry.term = Term::CondBr { cond: Value::Reg(p), taken: BlockId(1), fall: BlockId(2) };
        f.add_block(entry);

        let mut sw = Block::new("switchy");
        sw.term = Term::Switch {
            value: Value::Reg(tid),
            cases: vec![(0, BlockId(2)), (3, BlockId(2))],
            default: BlockId(2),
        };
        f.add_block(sw);

        let mut exit = Block::new("exit");
        exit.insts.push(Inst::Store {
            ty: STy::F32,
            space: Space::Global,
            addr: Value::Reg(addr),
            value: Value::Reg(x),
        });
        exit.term = Term::Ret;
        f.add_block(exit);

        let model = MachineModel::sandybridge_sse();
        let info = CostInfo::analyze(&f, &model);
        let layout = FrameLayout::of(&f);
        BytecodeProgram::decode(&f, &layout, &model, &info)
    }

    fn assert_programs_equal(a: &BytecodeProgram, b: &BytecodeProgram) {
        assert_eq!(a.warp_size, b.warp_size);
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.code.len(), b.code.len());
        // Op/OpKind do not implement PartialEq (they hold f64-free payloads
        // but were never compared before); compare via Debug formatting,
        // which prints every field.
        for (x, y) in a.code.iter().zip(&b.code) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn program_round_trip() {
        let p = sample_program();
        let bytes = program_to_bytes(&p);
        let q = program_from_bytes(&bytes).expect("decode");
        assert_programs_equal(&p, &q);
        assert!(q.profile.is_none());
    }

    #[test]
    fn encoding_is_deterministic() {
        let p = sample_program();
        assert_eq!(program_to_bytes(&p), program_to_bytes(&p));
    }

    #[test]
    fn truncation_is_an_error() {
        let bytes = program_to_bytes(&sample_program());
        for cut in [0, 1, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(program_from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = program_to_bytes(&sample_program());
        bytes.push(7);
        assert!(program_from_bytes(&bytes).is_err());
    }

    #[test]
    fn out_of_range_slot_fails_validation() {
        let mut p = sample_program();
        // Corrupt a destination offset past the slot count, then encode:
        // decode must reject it via the re-validation pass.
        for op in &mut p.code {
            if let OpKind::Bin { ref mut dst, .. } = op.kind {
                dst.off = p.slots as u32 + 100;
                break;
            }
        }
        let bytes = program_to_bytes(&p);
        assert!(program_from_bytes(&bytes).is_err());
    }
}
