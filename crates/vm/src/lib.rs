//! # dpvk-vm
//!
//! The simulated vector machine of the CGO 2012 reproduction: an
//! interpreter for `dpvk-ir` functions with a Sandybridge-like cost model.
//!
//! In the paper, vectorized kernels are JIT-compiled by LLVM and run on a
//! real i7-2600. This crate substitutes a cycle-accurate-*enough*
//! interpreter: every instruction charges issue slots under a
//! [`MachineModel`], vector operations amortize lanes up to the machine
//! width, register pressure beyond the architectural vector file charges
//! spill penalties, and cycles are attributed to subkernel vs. yield
//! buckets per block kind. The resulting *shapes* — vector speedup, the
//! width-8 collapse of Table 1, the overhead split of Figure 9 — are the
//! quantities the paper's evaluation measures.
//!
//! ## Example: running a warp by hand
//!
//! ```
//! use dpvk_ir::{Block, Function, Inst, Space, STy, Term, Type, Value};
//! use dpvk_vm::{
//!     execute_warp, CostInfo, ExecLimits, ExecStats, GlobalMem, MachineModel, MemAccess,
//!     ThreadContext,
//! };
//!
//! // A one-instruction kernel: global[0] = 42.
//! let mut f = Function::new("store42", 1);
//! let mut b = Block::new("entry");
//! b.insts.push(Inst::Store {
//!     ty: STy::I32,
//!     space: Space::Global,
//!     addr: Value::ImmI(0),
//!     value: Value::ImmI(42),
//! });
//! b.term = Term::Ret;
//! f.add_block(b);
//!
//! let model = MachineModel::sandybridge_sse();
//! let info = CostInfo::analyze(&f, &model);
//! let global = GlobalMem::new(64);
//! let mut ctxs = vec![ThreadContext::new([0; 3], [1, 1, 1], [0; 3], [1, 1, 1])];
//! let (mut shared, mut local) = (vec![0u8; 0], vec![0u8; 0]);
//! let mut mem = MemAccess {
//!     global: &global,
//!     shared: &mut shared,
//!     local: &mut local,
//!     param: &[],
//!     cbank: &[],
//! };
//! let mut stats = ExecStats::default();
//! execute_warp(&f, &info, &model, &mut ctxs, 0, &mut mem, &mut stats, &ExecLimits::default(), None)?;
//! assert_eq!(u32::from_le_bytes(global.read::<4>(0)?), 42);
//! # Ok::<(), dpvk_vm::VmError>(())
//! ```

#![warn(missing_docs)]

mod bytecode;
mod cancel;
mod context;
mod cost;
mod decode;
mod error;
mod frame;
mod interp;
mod jit;
mod machine;
mod memory;
pub mod serial;
mod stats;

pub use bytecode::{execute_warp_bytecode, BytecodeProgram, DecodeStats};
pub use cancel::CancelToken;
pub use context::ThreadContext;
pub use cost::{inst_cost, inst_flops, term_cost, CostInfo};
pub use error::VmError;
pub use frame::{FrameLayout, RegFrame};
pub use interp::{execute_warp, execute_warp_framed, ExecLimits, WarpOutcome};
pub use jit::{
    compile as jit_compile, execute_warp_jit, jit_inline_width_cap, jit_supported, JitEmitStats,
    JitProgram,
};
pub use machine::MachineModel;
pub use memory::{GlobalMem, MemAccess};
pub use stats::ExecStats;
