//! Execution statistics: the raw material of the paper's Figures 7–9.

/// Cycle and event counters accumulated while executing kernels.
///
/// Cycles are split into the three phases of the paper's Figure 9:
/// subkernel execution (`cycles_body`), yield save/restore overhead
/// (`cycles_yield`, cycles spent in compiler-inserted scheduler, entry and
/// exit handler blocks), and execution-manager overhead (`cycles_manager`,
/// charged by `dpvk-core`'s execution manager for warp formation, barrier
/// bookkeeping and translation-cache queries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Modeled cycles in kernel body blocks.
    pub cycles_body: u64,
    /// Modeled cycles in scheduler/entry/exit handler blocks.
    pub cycles_yield: u64,
    /// Modeled cycles charged by the execution manager.
    pub cycles_manager: u64,
    /// Dynamic instructions executed (terminators included).
    pub instructions: u64,
    /// Single-precision-equivalent floating-point operations.
    pub flops: u64,
    /// Scalar loads executed.
    pub loads: u64,
    /// Scalar stores executed.
    pub stores: u64,
    /// Loads executed inside entry-handler blocks (live-state restores);
    /// divided by thread-entries this gives the paper's Figure 8 metric.
    pub restore_loads: u64,
    /// Stores executed inside exit-handler blocks (live-state spills).
    pub spill_stores: u64,
    /// Warp executions, i.e. kernel entries from the execution manager.
    pub warp_entries: u64,
    /// Sum of warp sizes over all entries (thread-entries).
    pub thread_entries: u64,
    /// Bytes stored by exit-handler live-state spills.
    pub spill_bytes: u64,
    /// Bytes loaded by entry-handler live-state restores.
    pub restore_bytes: u64,
    /// Warp entries that ran a scalar-baseline fallback because the
    /// requested vectorized specialization failed to compile.
    pub downgraded_warps: u64,
    /// Warp entries aborted by cooperative cancellation or a launch
    /// deadline before completing.
    pub cancelled_warps: u64,
}

impl ExecStats {
    /// Total modeled cycles across all phases.
    pub fn total_cycles(&self) -> u64 {
        self.cycles_body + self.cycles_yield + self.cycles_manager
    }

    /// Add another stats block into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.cycles_body += other.cycles_body;
        self.cycles_yield += other.cycles_yield;
        self.cycles_manager += other.cycles_manager;
        self.instructions += other.instructions;
        self.flops += other.flops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.restore_loads += other.restore_loads;
        self.spill_stores += other.spill_stores;
        self.warp_entries += other.warp_entries;
        self.thread_entries += other.thread_entries;
        self.spill_bytes += other.spill_bytes;
        self.restore_bytes += other.restore_bytes;
        self.downgraded_warps += other.downgraded_warps;
        self.cancelled_warps += other.cancelled_warps;
    }

    /// Fraction of modeled cycles spent in kernel body blocks.
    pub fn body_fraction(&self) -> f64 {
        self.fraction(self.cycles_body)
    }

    /// Fraction of modeled cycles spent in yield save/restore blocks.
    pub fn yield_fraction(&self) -> f64 {
        self.fraction(self.cycles_yield)
    }

    /// Fraction of modeled cycles charged by the execution manager.
    pub fn manager_fraction(&self) -> f64 {
        self.fraction(self.cycles_manager)
    }

    fn fraction(&self, part: u64) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            return 0.0;
        }
        part as f64 / total as f64
    }

    /// Average warp size over all kernel entries.
    pub fn average_warp_size(&self) -> f64 {
        if self.warp_entries == 0 {
            return 0.0;
        }
        self.thread_entries as f64 / self.warp_entries as f64
    }

    /// Average values restored per thread at entry points (Figure 8).
    pub fn average_values_restored(&self) -> f64 {
        if self.thread_entries == 0 {
            return 0.0;
        }
        self.restore_loads as f64 / self.thread_entries as f64
    }

    /// GFLOP/s at the given clock, from modeled cycles on one core.
    pub fn gflops(&self, clock_ghz: f64) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            return 0.0;
        }
        self.flops as f64 * clock_ghz / cycles as f64
    }
}

impl std::fmt::Display for ExecStats {
    /// Figure-9-style cycle breakdown plus the aggregate event counters.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cycles: {:>12} total = body {:>5.1}% + yield {:>5.1}% + manager {:>5.1}%",
            self.total_cycles(),
            100.0 * self.body_fraction(),
            100.0 * self.yield_fraction(),
            100.0 * self.manager_fraction(),
        )?;
        writeln!(
            f,
            "phase cycles: body {:>12}   yield {:>12}   manager {:>12}",
            self.cycles_body, self.cycles_yield, self.cycles_manager
        )?;
        writeln!(
            f,
            "instructions: {:>10}   flops: {:>10}   loads: {:>10}   stores: {:>10}",
            self.instructions, self.flops, self.loads, self.stores
        )?;
        writeln!(
            f,
            "warp entries: {:>10}   avg warp size: {:.2}   avg restores/thread: {:.2}",
            self.warp_entries,
            self.average_warp_size(),
            self.average_values_restored()
        )?;
        write!(
            f,
            "spill bytes: {:>11}   restore bytes: {:>10}",
            self.spill_bytes, self.restore_bytes
        )?;
        if self.downgraded_warps != 0 || self.cancelled_warps != 0 {
            write!(
                f,
                "\ndegradation: {:>10} warps downgraded to scalar, {} warps cancelled",
                self.downgraded_warps, self.cancelled_warps
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_everything() {
        let mut a = ExecStats {
            cycles_body: 10,
            flops: 4,
            warp_entries: 1,
            thread_entries: 4,
            ..Default::default()
        };
        let b = ExecStats {
            cycles_body: 5,
            cycles_manager: 2,
            flops: 2,
            warp_entries: 1,
            thread_entries: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles_body, 15);
        assert_eq!(a.cycles_manager, 2);
        assert_eq!(a.flops, 6);
        assert_eq!(a.average_warp_size(), 3.0);
    }

    #[test]
    fn gflops_uses_total_cycles() {
        let s = ExecStats {
            cycles_body: 50,
            cycles_yield: 25,
            cycles_manager: 25,
            flops: 200,
            ..Default::default()
        };
        // 200 flops / 100 cycles * 1 GHz = 2 GFLOP/s.
        assert!((s.gflops(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_divide_safely() {
        let s = ExecStats::default();
        assert_eq!(s.average_warp_size(), 0.0);
        assert_eq!(s.average_values_restored(), 0.0);
        assert_eq!(s.gflops(3.4), 0.0);
        assert_eq!(s.body_fraction(), 0.0);
    }

    #[test]
    fn fractions_partition_total_cycles() {
        let s = ExecStats {
            cycles_body: 60,
            cycles_yield: 30,
            cycles_manager: 10,
            ..Default::default()
        };
        assert!((s.body_fraction() - 0.6).abs() < 1e-12);
        assert!((s.yield_fraction() - 0.3).abs() < 1e-12);
        assert!((s.manager_fraction() - 0.1).abs() < 1e-12);
        let sum = s.body_fraction() + s.yield_fraction() + s.manager_fraction();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_reports_breakdown_and_bytes() {
        let s = ExecStats {
            cycles_body: 50,
            cycles_yield: 25,
            cycles_manager: 25,
            spill_bytes: 128,
            restore_bytes: 64,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("body  50.0%"), "{text}");
        assert!(text.contains("spill bytes"), "{text}");
        assert!(text.contains("128"), "{text}");
        assert!(text.contains("phase cycles:"), "{text}");
        assert!(text.contains("yield           25"), "{text}");
    }
}
