//! Minimal hand-rolled JSON emission (the crate is dependency-free, so
//! no serde). Only what the trace report needs: objects, arrays,
//! strings, integers, booleans and floats.

use std::fmt::Write as _;

/// Append `s` as a JSON string literal (with escaping) to `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builder that tracks comma placement for one nesting level at a time.
///
/// The report writer drives this linearly (open object, emit fields,
/// close), so a simple "need a comma before the next item?" flag per
/// builder instance is enough.
pub struct Json {
    out: String,
    need_comma: Vec<bool>,
}

impl Json {
    /// Fresh writer.
    pub fn new() -> Self {
        Json { out: String::new(), need_comma: Vec::new() }
    }

    fn pre_item(&mut self) {
        if let Some(flag) = self.need_comma.last_mut() {
            if *flag {
                self.out.push(',');
            }
            *flag = true;
        }
    }

    /// Open an object as the next value (optionally as field `key`).
    pub fn open_obj(&mut self, key: Option<&str>) {
        self.pre_item();
        if let Some(k) = key {
            push_str_lit(&mut self.out, k);
            self.out.push(':');
        }
        self.out.push('{');
        self.need_comma.push(false);
    }

    /// Close the innermost object.
    pub fn close_obj(&mut self) {
        self.need_comma.pop();
        self.out.push('}');
    }

    /// Open an array as the next value (optionally as field `key`).
    pub fn open_arr(&mut self, key: Option<&str>) {
        self.pre_item();
        if let Some(k) = key {
            push_str_lit(&mut self.out, k);
            self.out.push(':');
        }
        self.out.push('[');
        self.need_comma.push(false);
    }

    /// Close the innermost array.
    pub fn close_arr(&mut self) {
        self.need_comma.pop();
        self.out.push(']');
    }

    /// Emit field `key` with an unsigned integer value.
    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.pre_item();
        push_str_lit(&mut self.out, key);
        let _ = write!(self.out, ":{v}");
    }

    /// Emit field `key` with a string value.
    pub fn field_str(&mut self, key: &str, v: &str) {
        self.pre_item();
        push_str_lit(&mut self.out, key);
        self.out.push(':');
        push_str_lit(&mut self.out, v);
    }

    /// Emit field `key` with a boolean value.
    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.pre_item();
        push_str_lit(&mut self.out, key);
        let _ = write!(self.out, ":{v}");
    }

    /// Emit field `key` with a finite float value, three decimal places
    /// (used for microsecond timestamps in the Chrome trace export).
    pub fn field_f64(&mut self, key: &str, v: f64) {
        self.pre_item();
        push_str_lit(&mut self.out, key);
        let _ = write!(self.out, ":{v:.3}");
    }

    /// Emit a bare unsigned integer array element.
    pub fn elem_u64(&mut self, v: u64) {
        self.pre_item();
        let _ = write!(self.out, "{v}");
    }

    /// Finish and return the JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

impl Default for Json {
    fn default() -> Self {
        Json::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_json() {
        let mut j = Json::new();
        j.open_obj(None);
        j.field_str("name", "a\"b\\c\n");
        j.field_u64("n", 3);
        j.open_arr(Some("xs"));
        j.elem_u64(1);
        j.elem_u64(2);
        j.close_arr();
        j.open_obj(Some("inner"));
        j.field_bool("ok", true);
        j.close_obj();
        j.close_obj();
        assert_eq!(j.finish(), r#"{"name":"a\"b\\c\n","n":3,"xs":[1,2],"inner":{"ok":true}}"#);
    }
}
