//! µop-level profile aggregation for the bytecode engine.
//!
//! The engine counts per-µop dispatches and modeled-cycle attribution
//! while executing each warp (see `dpvk-vm`'s `bytecode` module) and
//! flushes one [`UopSample`] per warp call here. Samples are aggregated
//! per kernel × specialization (warp width + variant) × engine path
//! (`"avx2"` vs `"portable"`), alongside the static µop mix recorded at
//! decode time, and surfaced three ways: typed [`profiles`], a flattened
//! [`hotspots`] table for the report summary, and a collapsed-stack
//! [`folded`] file consumable by `inferno` / `flamegraph.pl`.
//!
//! Profiling rides on the trace enable flag ([`uop_enabled`] is
//! `enabled() && !opted-out`), so the disabled fast path stays one
//! relaxed atomic load per warp call.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static UOPS: AtomicBool = AtomicBool::new(true);

/// Whether the µop profiler should collect samples: tracing is enabled
/// and profiling has not been opted out (`DPVK_TRACE_UOPS=0` or
/// [`set_uop_profiling`]). Checked once per warp call by the engine.
#[inline]
pub fn uop_enabled() -> bool {
    crate::enabled() && UOPS.load(Ordering::Relaxed)
}

/// Opt the µop profiler in or out independently of the trace flag
/// (default: in).
pub fn set_uop_profiling(on: bool) {
    UOPS.store(on, Ordering::Relaxed);
}

/// One warp call's µop samples, flushed by the bytecode engine. `hits`
/// and `cycles` are indexed by opcode, parallel to `names`/`fused`
/// (which are `'static` tables owned by the engine).
#[derive(Debug, Clone, Copy)]
pub struct UopSample<'a> {
    /// Kernel name.
    pub kernel: &'a str,
    /// Warp width of the executed specialization.
    pub warp_size: u32,
    /// Specialization variant label (`"baseline"`, `"dynamic"`, ...).
    pub variant: &'a str,
    /// Engine path the warp ran on (`"avx2"` or `"portable"`).
    pub path: &'static str,
    /// Stable µop names, indexed by opcode.
    pub names: &'static [&'static str],
    /// Which opcodes are superinstructions (fused at decode).
    pub fused: &'static [bool],
    /// Per-opcode dispatch counts for this warp call.
    pub hits: &'a [u64],
    /// Per-opcode modeled-cycle attribution for this warp call.
    pub cycles: &'a [u64],
}

struct DynEntry {
    kernel: String,
    warp_size: u32,
    variant: String,
    path: &'static str,
    names: &'static [&'static str],
    fused: &'static [bool],
    hits: Vec<u64>,
    cycles: Vec<u64>,
}

struct StaticEntry {
    kernel: String,
    warp_size: u32,
    variant: String,
    counts: Vec<u64>,
}

#[derive(Default)]
struct ProfState {
    dynamic: Vec<DynEntry>,
    statics: Vec<StaticEntry>,
}

fn state() -> &'static Mutex<ProfState> {
    static STATE: OnceLock<Mutex<ProfState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(ProfState::default()))
}

fn lock_state() -> std::sync::MutexGuard<'static, ProfState> {
    state().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Aggregate one warp call's samples. Allocation-free in the steady
/// state (the per-key rows are allocated on first sight of a key).
pub fn record_uops(sample: &UopSample<'_>) {
    if !uop_enabled() {
        return;
    }
    let mut s = lock_state();
    let entry = match s.dynamic.iter_mut().find(|e| {
        e.kernel == sample.kernel
            && e.warp_size == sample.warp_size
            && e.variant == sample.variant
            && e.path == sample.path
    }) {
        Some(e) => e,
        None => {
            s.dynamic.push(DynEntry {
                kernel: sample.kernel.to_string(),
                warp_size: sample.warp_size,
                variant: sample.variant.to_string(),
                path: sample.path,
                names: sample.names,
                fused: sample.fused,
                hits: vec![0; sample.names.len()],
                cycles: vec![0; sample.names.len()],
            });
            s.dynamic.last_mut().expect("just pushed")
        }
    };
    let n = entry.hits.len().min(sample.hits.len()).min(sample.cycles.len());
    for i in 0..n {
        entry.hits[i] += sample.hits[i];
        entry.cycles[i] += sample.cycles[i];
    }
}

/// Record the static µop mix of a freshly decoded specialization
/// (`counts[opcode]` = occurrences in the linear bytecode). Engine-path
/// independent; merged into both paths' rows at report time.
pub fn record_static_mix(kernel: &str, warp_size: u32, variant: &str, counts: &[u64]) {
    if !crate::enabled() {
        return;
    }
    let mut s = lock_state();
    if let Some(e) = s
        .statics
        .iter_mut()
        .find(|e| e.kernel == kernel && e.warp_size == warp_size && e.variant == variant)
    {
        e.counts = counts.to_vec();
        return;
    }
    s.statics.push(StaticEntry {
        kernel: kernel.to_string(),
        warp_size,
        variant: variant.to_string(),
        counts: counts.to_vec(),
    });
}

/// Clear all recorded profile data (used by `trace::reset`).
pub(crate) fn reset_profile() {
    let mut s = lock_state();
    s.dynamic.clear();
    s.statics.clear();
}

// ---------------------------------------------------------------------------
// Typed views
// ---------------------------------------------------------------------------

/// One µop's aggregated row within a [`UopProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UopRow {
    /// µop name.
    pub uop: &'static str,
    /// Whether the µop is a decode-time superinstruction.
    pub fused: bool,
    /// Dynamic dispatch count.
    pub hits: u64,
    /// Modeled cycles attributed to the µop.
    pub cycles: u64,
    /// Static occurrences in the decoded bytecode.
    pub static_ops: u64,
}

/// Aggregated µop profile of one kernel × specialization × engine path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UopProfile {
    /// Kernel name.
    pub kernel: String,
    /// Warp width of the specialization.
    pub warp_size: u32,
    /// Specialization variant label.
    pub variant: String,
    /// Engine path (`"avx2"` or `"portable"`).
    pub path: &'static str,
    /// Non-empty rows in opcode order.
    pub rows: Vec<UopRow>,
}

/// All aggregated profiles, sorted by (kernel, warp, variant, path) so
/// reports are deterministic. Rows with no dynamic or static activity
/// are omitted.
pub fn profiles() -> Vec<UopProfile> {
    let s = lock_state();
    let mut out: Vec<UopProfile> = Vec::new();
    for e in &s.dynamic {
        let static_counts = s
            .statics
            .iter()
            .find(|st| {
                st.kernel == e.kernel && st.warp_size == e.warp_size && st.variant == e.variant
            })
            .map(|st| st.counts.as_slice())
            .unwrap_or(&[]);
        let rows = (0..e.names.len())
            .filter_map(|i| {
                let static_ops = static_counts.get(i).copied().unwrap_or(0);
                if e.hits[i] == 0 && e.cycles[i] == 0 && static_ops == 0 {
                    return None;
                }
                Some(UopRow {
                    uop: e.names[i],
                    fused: e.fused.get(i).copied().unwrap_or(false),
                    hits: e.hits[i],
                    cycles: e.cycles[i],
                    static_ops,
                })
            })
            .collect();
        out.push(UopProfile {
            kernel: e.kernel.clone(),
            warp_size: e.warp_size,
            variant: e.variant.clone(),
            path: e.path,
            rows,
        });
    }
    out.sort_by(|a, b| {
        (a.kernel.as_str(), a.warp_size, a.variant.as_str(), a.path).cmp(&(
            b.kernel.as_str(),
            b.warp_size,
            b.variant.as_str(),
            b.path,
        ))
    });
    out
}

/// One row of the flattened hotspot table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hotspot {
    /// Kernel name.
    pub kernel: String,
    /// Warp width of the specialization.
    pub warp_size: u32,
    /// Specialization variant label.
    pub variant: String,
    /// Engine path.
    pub path: &'static str,
    /// µop name.
    pub uop: &'static str,
    /// Dynamic dispatch count.
    pub hits: u64,
    /// Modeled cycles attributed.
    pub cycles: u64,
}

/// The `limit` hottest µop rows across all profiles, by modeled cycles
/// (ties broken deterministically by key).
pub fn hotspots(limit: usize) -> Vec<Hotspot> {
    let mut all: Vec<Hotspot> = profiles()
        .into_iter()
        .flat_map(|p| {
            let (kernel, warp_size, variant, path) = (p.kernel, p.warp_size, p.variant, p.path);
            p.rows.into_iter().filter(|r| r.cycles > 0 || r.hits > 0).map(move |r| Hotspot {
                kernel: kernel.clone(),
                warp_size,
                variant: variant.clone(),
                path,
                uop: r.uop,
                hits: r.hits,
                cycles: r.cycles,
            })
        })
        .collect();
    all.sort_by(|a, b| {
        b.cycles.cmp(&a.cycles).then_with(|| {
            (a.kernel.as_str(), a.warp_size, a.variant.as_str(), a.path, a.uop).cmp(&(
                b.kernel.as_str(),
                b.warp_size,
                b.variant.as_str(),
                b.path,
                b.uop,
            ))
        })
    });
    all.truncate(limit);
    all
}

/// Total modeled cycles attributed across every profile row.
pub fn total_cycles() -> u64 {
    lock_state().dynamic.iter().map(|e| e.cycles.iter().sum::<u64>()).sum()
}

// ---------------------------------------------------------------------------
// Collapsed-stack export
// ---------------------------------------------------------------------------

/// Render the profiles in collapsed-stack ("folded") format, one line
/// per µop row: `kernel;w<width> <variant>;<path>;<µop> <cycles>`.
/// Feed to `inferno-flamegraph` or `flamegraph.pl` to get a flame graph
/// of modeled cycles.
pub fn folded() -> String {
    let mut out = String::new();
    for p in profiles() {
        for r in &p.rows {
            if r.cycles == 0 {
                continue;
            }
            out.push_str(&format!(
                "{};w{} {};{};{} {}\n",
                p.kernel, p.warp_size, p.variant, p.path, r.uop, r.cycles
            ));
        }
    }
    out
}

/// Write the folded profile to `path`, creating parent directories.
pub fn write_folded(path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, folded())
}

/// Default folded-profile output path: `DPVK_PROFILE_OUT` if set, else
/// `target/dpvk-profile.folded`.
pub fn default_folded_path() -> PathBuf {
    match std::env::var_os("DPVK_PROFILE_OUT") {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from("target").join("dpvk-profile.folded"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAMES: [&str; 3] = ["bin", "cmp_br", "ret"];
    const FUSED: [bool; 3] = [false, true, false];

    fn sample<'a>(hits: &'a [u64], cycles: &'a [u64], path: &'static str) -> UopSample<'a> {
        UopSample {
            kernel: "k",
            warp_size: 4,
            variant: "dynamic",
            path,
            names: &NAMES,
            fused: &FUSED,
            hits,
            cycles,
        }
    }

    #[test]
    fn samples_aggregate_per_key_and_merge_static_mix() {
        let _g = crate::test_serial();
        crate::enable();
        crate::reset();
        record_static_mix("k", 4, "dynamic", &[2, 1, 1]);
        record_uops(&sample(&[10, 5, 1], &[40, 30, 2], "portable"));
        record_uops(&sample(&[10, 5, 1], &[40, 30, 2], "portable"));
        record_uops(&sample(&[1, 0, 1], &[4, 0, 2], "avx2"));
        let profiles = profiles();
        assert_eq!(profiles.len(), 2, "{profiles:?}");
        // Sorted: avx2 before portable.
        assert_eq!(profiles[0].path, "avx2");
        let portable = &profiles[1];
        assert_eq!(portable.rows[0].uop, "bin");
        assert_eq!(portable.rows[0].hits, 20);
        assert_eq!(portable.rows[0].cycles, 80);
        assert_eq!(portable.rows[0].static_ops, 2);
        assert_eq!(portable.rows[1].uop, "cmp_br");
        assert!(portable.rows[1].fused);
        assert_eq!(total_cycles(), 144 + 6);
        let top = hotspots(1);
        assert_eq!(top[0].uop, "bin");
        assert_eq!(top[0].cycles, 80);
        let folded = folded();
        assert!(folded.contains("k;w4 dynamic;portable;bin 80"), "{folded}");
        crate::disable();
        crate::reset();
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _g = crate::test_serial();
        crate::disable();
        crate::reset();
        record_uops(&sample(&[1, 1, 1], &[1, 1, 1], "portable"));
        assert!(profiles().is_empty());
        assert_eq!(total_cycles(), 0);
    }
}
