//! # dpvk-trace
//!
//! Lightweight, dependency-free observability for the dynamic
//! compilation pipeline: counters, histograms, scoped phase timers and a
//! bounded structured event ring, feeding a [`TraceReport`] that
//! serializes to JSON and renders a human-readable summary.
//!
//! The paper's evaluation (Figures 7–9) is built from exactly the signals
//! collected here: warp-occupancy mix, spill/restore volume at yields,
//! and the split of work between the execution manager, yield handlers
//! and the vectorized subkernel — plus the compile-side costs (per-phase
//! wall time, vector-promotion effectiveness) that Table 1's dynamic
//! compilation story depends on.
//!
//! ## Cost model
//!
//! Tracing is **disabled by default** and every recording entry point
//! starts with a single relaxed atomic load ([`enabled`]); the disabled
//! path does no allocation, locking, or timestamping. Enable it with
//! `DPVK_TRACE=1` in the environment (checked once by [`init_from_env`],
//! which `dpvk-core`'s `Device` calls) or programmatically with
//! [`enable`].
//!
//! ## Usage
//!
//! ```
//! dpvk_trace::enable();
//! dpvk_trace::add(dpvk_trace::Counter::CacheHit, 1);
//! {
//!     let _t = dpvk_trace::phase("my_kernel", "translate");
//!     // ... timed work ...
//! }
//! let report = dpvk_trace::TraceReport::capture();
//! assert_eq!(report.counter("cache_hit"), 1);
//! dpvk_trace::disable();
//! dpvk_trace::reset();
//! ```

#![warn(missing_docs)]

mod json;
pub mod profile;
mod report;
pub mod timeline;

pub use report::{write_if_enabled, EventReport, PhaseReport, TraceReport};

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

/// Whether tracing is currently enabled. This is the only check on the
/// disabled fast path: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn tracing off (already-recorded data is kept until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Enable tracing if the `DPVK_TRACE` environment variable is truthy
/// (`1`, `true`, `on`, `yes`). Idempotent; the variable is read once per
/// process so repeated calls cost one `Once` check. Also applies the
/// `DPVK_TRACE_UOPS` opt-out for the µop profiler (see
/// [`profile::set_uop_profiling`]).
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("DPVK_TRACE") {
            if matches!(v.as_str(), "1" | "true" | "on" | "yes") {
                enable();
            }
        }
        if let Ok(v) = std::env::var("DPVK_TRACE_UOPS") {
            if matches!(v.as_str(), "0" | "false" | "off" | "no") {
                profile::set_uop_profiling(false);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Monotonic event counters, enum-indexed into a fixed atomic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Translation-cache requests served from the cache.
    CacheHit,
    /// Translation-cache requests that triggered compilation.
    CacheMiss,
    /// Nanoseconds spent compiling on cache misses.
    CacheCompileNs,
    /// Scalar (per-lane replicated) instructions in specialized bodies.
    SpecReplicated,
    /// Vector-promoted instructions in specialized bodies.
    SpecPromoted,
    /// `insertelement` pack glue emitted by the vectorizer.
    SpecPackGlue,
    /// `extractelement` unpack glue emitted by the vectorizer.
    SpecUnpackGlue,
    /// Instructions removed by dead-code elimination.
    SpecDceRemoved,
    /// Warp yields whose resume status was a divergent branch.
    YieldBranch,
    /// Warp yields whose resume status was a barrier arrival.
    YieldBarrier,
    /// Warp yields whose resume status was thread termination.
    YieldExit,
    /// Warp executions launched by the execution manager.
    WarpEntries,
    /// Sum of warp widths over all warp entries.
    ThreadEntries,
    /// Ready-queue slots inspected while gathering warps (formation scan
    /// cost).
    ScanSteps,
    /// Bytes of live state spilled by exit handlers.
    SpillBytes,
    /// Bytes of live state restored by entry handlers.
    RestoreBytes,
    /// Events discarded because the bounded event ring was full.
    EventsDropped,
    /// Warp entries downgraded to the scalar baseline because the
    /// requested specialization failed to compile.
    DowngradedWarps,
    /// Warp executions aborted by cancellation or a launch deadline.
    CancelledWarps,
    /// Specializations that failed to compile (verify error, unsupported
    /// construct).
    SpecFailures,
    /// Execution faults surfaced from launches (panics, VM errors,
    /// deadline/cancellation).
    Faults,
    /// Wall-clock nanoseconds the host spent resolving warp dispatches
    /// (specialization lookup) in the steady state.
    HostDispatchNs,
    /// Wall-clock nanoseconds the host spent forming warps from the
    /// ready queue.
    HostFormationNs,
    /// Wall-clock nanoseconds spent pre-decoding compiled functions into
    /// linear bytecode (part of each cache-miss fill).
    GuestDecodeNs,
    /// Warp executions dispatched to the pre-decoded bytecode engine.
    WarpsBytecode,
    /// Warp executions dispatched to the tree-walk oracle engine.
    WarpsTree,
    /// Warp executions dispatched to native x86-64 code emitted by the
    /// copy-and-patch JIT tier.
    WarpsJit,
    /// Bytes of executable x86-64 emitted by the JIT tier.
    JitCodeBytes,
    /// µops lowered through an inline machine-code template at JIT emit.
    JitTemplateUops,
    /// µops lowered to a call into the shared interpreter helper at JIT
    /// emit (no inline template for the op shape).
    JitHelperUops,
    /// Warp executions requested under `DPVK_ENGINE=jit` that fell back
    /// to the bytecode interpreter (unsupported host, emit failure, or
    /// µop-profiling active).
    JitFallbackWarps,
    /// `Cmp`+`CondBr` pairs fused into compare-branch µops at decode.
    FusedCmpBr,
    /// Scalar `Bin`+`Bin` chains fused into one µop at decode.
    FusedBinBin,
    /// Scalar `Load`+`Bin` pairs fused into one µop at decode.
    FusedLoadBin,
    /// Launches accepted by a worker pool (async or blocking).
    LaunchesSubmitted,
    /// Launches whose every chunk completed (result observable).
    LaunchesRetired,
    /// High-water mark of launches queued behind a stream's active job
    /// (peak, not a sum — see [`record_peak`]).
    StreamQueuePeak,
    /// High-water mark of pool workers simultaneously executing chunks
    /// (peak occupancy, not a sum — see [`record_peak`]).
    PoolBusyPeak,
    /// Launch requests received by the serving layer (before admission).
    ServerRequests,
    /// Launch requests admitted past the token bucket and capacity gate.
    ServerAdmitted,
    /// Launch requests shed with an `Overloaded` response (bucket empty
    /// or device pool saturated).
    ServerShed,
    /// Server-side retries of transient launch failures (worker panics,
    /// deadline-adjacent timeouts).
    ServerRetries,
    /// Admitted requests that fell back to the scalar baseline after the
    /// vectorized retry budget was exhausted.
    ServerDegraded,
    /// Admitted requests that completed successfully (including after
    /// retries or degradation).
    ServerCompleted,
    /// Admitted requests that exhausted the retry ladder and surfaced a
    /// typed error to the client.
    ServerFailed,
    /// Persistent-cache artifacts loaded successfully from disk (a
    /// translate/specialize pipeline skipped).
    PersistHits,
    /// Persistent-cache lookups that found no usable artifact (absent,
    /// corrupt, or version-mismatched) and fell back to compilation.
    PersistMisses,
    /// Artifacts written to the persistent cache after a compile.
    PersistWrites,
    /// Artifacts evicted from the persistent cache directory to stay
    /// under its size cap (oldest first).
    PersistEvictions,
    /// Bytes served by the device allocator from recycled blocks
    /// (free-list or eviction-reserve hits).
    AllocReuseBytes,
    /// Bytes served by the device allocator from previously untouched
    /// heap (bump carving).
    AllocFreshBytes,
    /// Bytes of idle free-list blocks evicted (coalesced into the
    /// reserve) to satisfy an allocation under pressure.
    AllocEvictedBytes,
    /// Background respecializations scheduled by the adaptive width
    /// policy (`DPVK_ADAPT=on`).
    RespecEvents,
    /// Launch-boundary width switches adopted after a background
    /// respecialization finished.
    WidthSwitches,
    /// The subset of `JitHelperUops` that fell back solely because the
    /// µop's vector width exceeds the JIT's inline lane cap — the
    /// width-aware rung of the engine fallback ladder.
    JitWideHelperUops,
}

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; 55] = [
        Counter::CacheHit,
        Counter::CacheMiss,
        Counter::CacheCompileNs,
        Counter::SpecReplicated,
        Counter::SpecPromoted,
        Counter::SpecPackGlue,
        Counter::SpecUnpackGlue,
        Counter::SpecDceRemoved,
        Counter::YieldBranch,
        Counter::YieldBarrier,
        Counter::YieldExit,
        Counter::WarpEntries,
        Counter::ThreadEntries,
        Counter::ScanSteps,
        Counter::SpillBytes,
        Counter::RestoreBytes,
        Counter::EventsDropped,
        Counter::DowngradedWarps,
        Counter::CancelledWarps,
        Counter::SpecFailures,
        Counter::Faults,
        Counter::HostDispatchNs,
        Counter::HostFormationNs,
        Counter::GuestDecodeNs,
        Counter::WarpsBytecode,
        Counter::WarpsTree,
        Counter::WarpsJit,
        Counter::JitCodeBytes,
        Counter::JitTemplateUops,
        Counter::JitHelperUops,
        Counter::JitFallbackWarps,
        Counter::FusedCmpBr,
        Counter::FusedBinBin,
        Counter::FusedLoadBin,
        Counter::LaunchesSubmitted,
        Counter::LaunchesRetired,
        Counter::StreamQueuePeak,
        Counter::PoolBusyPeak,
        Counter::ServerRequests,
        Counter::ServerAdmitted,
        Counter::ServerShed,
        Counter::ServerRetries,
        Counter::ServerDegraded,
        Counter::ServerCompleted,
        Counter::ServerFailed,
        Counter::PersistHits,
        Counter::PersistMisses,
        Counter::PersistWrites,
        Counter::PersistEvictions,
        Counter::AllocReuseBytes,
        Counter::AllocFreshBytes,
        Counter::AllocEvictedBytes,
        Counter::RespecEvents,
        Counter::WidthSwitches,
        Counter::JitWideHelperUops,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::CacheHit => "cache_hit",
            Counter::CacheMiss => "cache_miss",
            Counter::CacheCompileNs => "cache_compile_ns",
            Counter::SpecReplicated => "spec_replicated",
            Counter::SpecPromoted => "spec_promoted",
            Counter::SpecPackGlue => "spec_pack_glue",
            Counter::SpecUnpackGlue => "spec_unpack_glue",
            Counter::SpecDceRemoved => "spec_dce_removed",
            Counter::YieldBranch => "yield_branch",
            Counter::YieldBarrier => "yield_barrier",
            Counter::YieldExit => "yield_exit",
            Counter::WarpEntries => "warp_entries",
            Counter::ThreadEntries => "thread_entries",
            Counter::ScanSteps => "scan_steps",
            Counter::SpillBytes => "spill_bytes",
            Counter::RestoreBytes => "restore_bytes",
            Counter::EventsDropped => "events_dropped",
            Counter::DowngradedWarps => "downgraded_warps",
            Counter::CancelledWarps => "cancelled_warps",
            Counter::SpecFailures => "spec_failures",
            Counter::Faults => "faults",
            Counter::HostDispatchNs => "host_dispatch_ns",
            Counter::HostFormationNs => "host_formation_ns",
            Counter::GuestDecodeNs => "guest_decode_ns",
            Counter::WarpsBytecode => "warps_bytecode",
            Counter::WarpsTree => "warps_tree",
            Counter::WarpsJit => "warps_jit",
            Counter::JitCodeBytes => "jit_code_bytes",
            Counter::JitTemplateUops => "jit_template_uops",
            Counter::JitHelperUops => "jit_helper_uops",
            Counter::JitFallbackWarps => "jit_fallback_warps",
            Counter::FusedCmpBr => "fused_cmp_br",
            Counter::FusedBinBin => "fused_bin_bin",
            Counter::FusedLoadBin => "fused_load_bin",
            Counter::LaunchesSubmitted => "launches_submitted",
            Counter::LaunchesRetired => "launches_retired",
            Counter::StreamQueuePeak => "stream_queue_peak",
            Counter::PoolBusyPeak => "pool_busy_peak",
            Counter::ServerRequests => "server_requests",
            Counter::ServerAdmitted => "server_admitted",
            Counter::ServerShed => "server_shed",
            Counter::ServerRetries => "server_retries",
            Counter::ServerDegraded => "server_degraded",
            Counter::ServerCompleted => "server_completed",
            Counter::ServerFailed => "server_failed",
            Counter::PersistHits => "persist_hits",
            Counter::PersistMisses => "persist_misses",
            Counter::PersistWrites => "persist_writes",
            Counter::PersistEvictions => "persist_evictions",
            Counter::AllocReuseBytes => "alloc_reuse_bytes",
            Counter::AllocFreshBytes => "alloc_fresh_bytes",
            Counter::AllocEvictedBytes => "alloc_evicted_bytes",
            Counter::RespecEvents => "respec_events",
            Counter::WidthSwitches => "width_switches",
            Counter::JitWideHelperUops => "jit_wide_helper_uops",
        }
    }
}

const NUM_COUNTERS: usize = Counter::ALL.len();

static COUNTERS: [AtomicU64; NUM_COUNTERS] = [const { AtomicU64::new(0) }; NUM_COUNTERS];

/// Add `n` to a counter. No-op (one atomic load) when tracing is off.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if enabled() {
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Raise a high-water-mark counter to `value` if it is below it. Used
/// for peak gauges ([`Counter::StreamQueuePeak`],
/// [`Counter::PoolBusyPeak`]) where adding samples would be meaningless.
/// No-op when tracing is off.
#[inline]
pub fn record_peak(counter: Counter, value: u64) {
    if enabled() {
        COUNTERS[counter as usize].fetch_max(value, Ordering::Relaxed);
    }
}

/// Current value of a counter.
pub fn counter(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Warp-occupancy histogram (Figure 7 raw data)
// ---------------------------------------------------------------------------

/// Largest warp width tracked individually by the occupancy histogram;
/// wider entries are clamped into the last bucket.
pub const MAX_TRACKED_WIDTH: usize = 64;

static OCCUPANCY: [AtomicU64; MAX_TRACKED_WIDTH + 1] =
    [const { AtomicU64::new(0) }; MAX_TRACKED_WIDTH + 1];

/// Record one warp entry of `width` threads that cost `scanned`
/// ready-queue inspections to form.
#[inline]
pub fn record_warp_entry(width: u32, scanned: u64) {
    if !enabled() {
        return;
    }
    let bucket = (width as usize).min(MAX_TRACKED_WIDTH);
    OCCUPANCY[bucket].fetch_add(1, Ordering::Relaxed);
    COUNTERS[Counter::WarpEntries as usize].fetch_add(1, Ordering::Relaxed);
    COUNTERS[Counter::ThreadEntries as usize].fetch_add(u64::from(width), Ordering::Relaxed);
    COUNTERS[Counter::ScanSteps as usize].fetch_add(scanned, Ordering::Relaxed);
}

/// The warp-occupancy histogram: `hist[w]` = warp entries at width `w`.
/// Trailing zero buckets are trimmed.
pub fn occupancy_histogram() -> Vec<u64> {
    let mut hist: Vec<u64> = OCCUPANCY.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    while hist.last() == Some(&0) {
        hist.pop();
    }
    hist
}

// ---------------------------------------------------------------------------
// Structured events (bounded ring)
// ---------------------------------------------------------------------------

/// Why a warp yielded back to the execution manager (mirrors the
/// interpreter's `ResumeStatus` without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YieldReason {
    /// Divergent conditional branch.
    Branch,
    /// Barrier arrival.
    Barrier,
    /// Thread termination.
    Exit,
}

impl YieldReason {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            YieldReason::Branch => "branch",
            YieldReason::Barrier => "barrier",
            YieldReason::Exit => "exit",
        }
    }

    fn counter(self) -> Counter {
        match self {
            YieldReason::Branch => Counter::YieldBranch,
            YieldReason::Barrier => Counter::YieldBarrier,
            YieldReason::Exit => Counter::YieldExit,
        }
    }
}

/// One structured trace event. Kernel names are interned; resolve them
/// through a captured [`TraceReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A warp returned to the execution manager.
    Yield {
        /// Interned kernel name.
        kernel: u32,
        /// Entry point the warp will resume at (0 = kernel entry).
        entry_point: u32,
        /// Why the warp yielded.
        reason: YieldReason,
        /// Number of threads in the warp.
        width: u32,
    },
    /// A translation-cache lookup.
    CacheQuery {
        /// Interned kernel name.
        kernel: u32,
        /// Requested warp size.
        warp_size: u32,
        /// Requested variant (`"baseline"`, `"dynamic"`, `"static_tie"`).
        variant: &'static str,
        /// Whether the specialization was already cached.
        hit: bool,
    },
    /// A cache miss finished compiling a specialization.
    Compile {
        /// Interned kernel name.
        kernel: u32,
        /// Compiled warp size.
        warp_size: u32,
        /// Compiled variant.
        variant: &'static str,
        /// Wall time of the compilation.
        ns: u64,
    },
    /// A specialization request was downgraded to the scalar baseline
    /// because the requested variant failed to compile.
    Downgrade {
        /// Interned kernel name.
        kernel: u32,
        /// Warp size that was requested (and refused).
        warp_size: u32,
        /// Variant that was requested.
        variant: &'static str,
        /// Interned failure message that caused the downgrade.
        detail: u32,
    },
    /// An execution fault escaped a launch (worker panic, VM error,
    /// deadline expiry or cancellation).
    Fault {
        /// Interned kernel name.
        kernel: u32,
        /// Interned rendered error (with provenance).
        detail: u32,
    },
    /// The adaptive width policy scheduled a background
    /// respecialization of a kernel toward a candidate width.
    Respec {
        /// Interned kernel name.
        kernel: u32,
        /// Width launches were running at when the candidate was
        /// scheduled.
        from: u32,
        /// Candidate width being compiled in the background.
        to: u32,
        /// Launches the policy had observed for the kernel at that
        /// point.
        launches: u64,
    },
    /// The adaptive width policy committed a final width for a kernel
    /// (exploration converged).
    WidthChoice {
        /// Interned kernel name.
        kernel: u32,
        /// The committed width.
        width: u32,
    },
    /// A launch entered (`submit = true`) or left (`submit = false`) a
    /// stream's ordered queue.
    Stream {
        /// Interned kernel name.
        kernel: u32,
        /// Stream identifier.
        stream: u64,
        /// Launches queued behind the stream's active job at the moment
        /// of the event.
        depth: u32,
        /// `true` on submit, `false` on retire.
        submit: bool,
    },
}

/// Default capacity of the bounded event ring; past it, events are
/// counted in [`Counter::EventsDropped`] instead of stored. Override
/// with the `DPVK_TRACE_EVENTS` environment variable (clamped to
/// [16, 4Mi]; read once per process — see [`event_capacity`]).
pub const EVENT_CAPACITY: usize = 4096;

fn parse_event_capacity(v: Option<&str>) -> usize {
    v.and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.clamp(16, 1 << 22))
        .unwrap_or(EVENT_CAPACITY)
}

/// Effective event-ring capacity: `DPVK_TRACE_EVENTS` if set to a valid
/// size (clamped to [16, 4Mi]), else [`EVENT_CAPACITY`]. Long
/// stream-stress runs that used to silently overflow the default ring
/// can raise it without a rebuild.
pub fn event_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| parse_event_capacity(std::env::var("DPVK_TRACE_EVENTS").ok().as_deref()))
}

/// Per-`(kernel, warp_size, variant)` vectorizer effectiveness record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecRecord {
    /// Kernel name.
    pub kernel: String,
    /// Warp width of the specialization.
    pub warp_size: u32,
    /// Variant label (`"baseline"`, `"dynamic"`, `"static_tie"`).
    pub variant: &'static str,
    /// Static instructions before the optimization pipeline.
    pub pre_opt_instructions: u64,
    /// Static instructions after the optimization pipeline.
    pub post_opt_instructions: u64,
    /// Scalar instructions replicated per lane in the final body.
    pub replicated: u64,
    /// Instructions promoted to vector form.
    pub promoted: u64,
    /// `insertelement` pack glue instructions.
    pub pack_glue: u64,
    /// `extractelement` unpack glue instructions.
    pub unpack_glue: u64,
    /// Instructions the optimizer's DCE removed.
    pub dce_removed: u64,
}

/// Per-tenant serving-layer totals, accumulated by [`record_server`] and
/// reported as the report's `tenants` section.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TenantRecord {
    /// Tenant name (empty in the accumulator; filled in snapshots).
    pub tenant: String,
    /// Launch requests received (before admission).
    pub requests: u64,
    /// Requests admitted past the token bucket and capacity gate.
    pub admitted: u64,
    /// Requests shed with an `Overloaded` response.
    pub shed: u64,
    /// Server-side retries of transient failures.
    pub retries: u64,
    /// Requests that fell back to the scalar baseline.
    pub degraded: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that surfaced a typed error after the retry ladder.
    pub failed: u64,
    /// Device wall-clock nanoseconds spent executing this tenant's
    /// admitted launches (all attempts included).
    pub exec_ns: u64,
}

/// One serving-layer lifecycle transition of a tenant's launch request,
/// recorded via [`record_server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerOutcome {
    /// A launch request arrived (counted before any admission decision).
    Request,
    /// The request passed admission control.
    Admitted,
    /// The request was shed with an `Overloaded` response.
    Shed,
    /// One transient failure was retried server-side.
    Retried,
    /// The request fell back to the scalar baseline.
    Degraded,
    /// The request completed successfully after `exec_ns` nanoseconds of
    /// cumulative device execution (all attempts).
    Completed {
        /// Cumulative execution wall time across attempts.
        exec_ns: u64,
    },
    /// The request exhausted the retry ladder and failed.
    Failed,
}

#[derive(Default)]
struct State {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
    events: Vec<Event>,
    phases: HashMap<(String, &'static str, usize), PhaseTotals>,
    specs: Vec<SpecRecord>,
    tenants: HashMap<String, TenantRecord>,
    /// Warps dispatched per `(kernel, width)`, accumulated (not ring
    /// events — dispatch memos flush these on a hot path).
    width_use: HashMap<(String, u32), u64>,
    /// Final width committed by the adaptive policy, per kernel.
    width_chosen: HashMap<String, u32>,
}

#[derive(Default, Clone, Copy)]
struct PhaseTotals {
    calls: u64,
    total_ns: u64,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

fn lock_state() -> std::sync::MutexGuard<'static, State> {
    state().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl State {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    fn push_event(&mut self, event: Event) {
        if self.events.len() < event_capacity() {
            self.events.push(event);
        } else {
            COUNTERS[Counter::EventsDropped as usize].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Record a warp yield event (reason counter + structured event).
#[inline]
pub fn record_yield(kernel: &str, entry_point: u32, reason: YieldReason, width: u32) {
    if !enabled() {
        return;
    }
    COUNTERS[reason.counter() as usize].fetch_add(1, Ordering::Relaxed);
    let mut s = lock_state();
    let kernel = s.intern(kernel);
    s.push_event(Event::Yield { kernel, entry_point, reason, width });
}

/// Record a translation-cache lookup.
#[inline]
pub fn record_cache_query(kernel: &str, warp_size: u32, variant: &'static str, hit: bool) {
    if !enabled() {
        return;
    }
    let c = if hit { Counter::CacheHit } else { Counter::CacheMiss };
    COUNTERS[c as usize].fetch_add(1, Ordering::Relaxed);
    let mut s = lock_state();
    let kernel = s.intern(kernel);
    s.push_event(Event::CacheQuery { kernel, warp_size, variant, hit });
}

/// Record a finished compilation (cache-miss fill).
#[inline]
pub fn record_compile(kernel: &str, warp_size: u32, variant: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    COUNTERS[Counter::CacheCompileNs as usize].fetch_add(ns, Ordering::Relaxed);
    let mut s = lock_state();
    let kernel = s.intern(kernel);
    s.push_event(Event::Compile { kernel, warp_size, variant, ns });
}

/// Record a downgrade-to-scalar: `kernel`'s `(warp_size, variant)`
/// specialization failed to compile (`detail`) and launches now fall
/// back to the baseline. Emitted once per failed specialization key; the
/// per-warp volume is in [`Counter::DowngradedWarps`].
#[inline]
pub fn record_downgrade(kernel: &str, warp_size: u32, variant: &'static str, detail: &str) {
    if !enabled() {
        return;
    }
    let mut s = lock_state();
    let kernel = s.intern(kernel);
    let detail = s.intern(detail);
    s.push_event(Event::Downgrade { kernel, warp_size, variant, detail });
}

/// Record an execution fault that escaped a launch of `kernel`; `detail`
/// is the rendered error, provenance included.
#[inline]
pub fn record_fault(kernel: &str, detail: &str) {
    if !enabled() {
        return;
    }
    COUNTERS[Counter::Faults as usize].fetch_add(1, Ordering::Relaxed);
    let mut s = lock_state();
    let kernel = s.intern(kernel);
    let detail = s.intern(detail);
    s.push_event(Event::Fault { kernel, detail });
}

/// Record a stream queue transition: a launch of `kernel` was submitted
/// to (`submit = true`) or retired from (`submit = false`) stream
/// `stream`, leaving `depth` launches queued behind its active job.
#[inline]
pub fn record_stream_event(kernel: &str, stream: u64, depth: u32, submit: bool) {
    if !enabled() {
        return;
    }
    let mut s = lock_state();
    let kernel = s.intern(kernel);
    s.push_event(Event::Stream { kernel, stream, depth, submit });
}

/// Record `warps` warp dispatches of `kernel` resolved at `width`. Fed
/// by the execution manager's dispatch-memo flushes; accumulated per
/// `(kernel, width)` rather than pushed into the event ring.
#[inline]
pub fn record_width_use(kernel: &str, width: u32, warps: u64) {
    if !enabled() || warps == 0 {
        return;
    }
    let mut s = lock_state();
    *s.width_use.entry((kernel.to_string(), width)).or_default() += warps;
}

/// Record a scheduled background respecialization: the adaptive policy
/// is moving `kernel` from `from` toward candidate width `to` after
/// observing `launches` launches.
#[inline]
pub fn record_respec(kernel: &str, from: u32, to: u32, launches: u64) {
    if !enabled() {
        return;
    }
    let mut s = lock_state();
    let kernel = s.intern(kernel);
    s.push_event(Event::Respec { kernel, from, to, launches });
}

/// Record the adaptive policy's final width commitment for `kernel`.
#[inline]
pub fn record_width_choice(kernel: &str, width: u32) {
    if !enabled() {
        return;
    }
    let mut s = lock_state();
    let id = s.intern(kernel);
    s.push_event(Event::WidthChoice { kernel: id, width });
    s.width_chosen.insert(kernel.to_string(), width);
}

/// Record one serving-layer transition for `tenant`: bumps the matching
/// global `server_*` counter and the tenant's [`TenantRecord`] totals.
#[inline]
pub fn record_server(tenant: &str, outcome: ServerOutcome) {
    if !enabled() {
        return;
    }
    let (counter, exec_ns) = match outcome {
        ServerOutcome::Request => (Counter::ServerRequests, 0),
        ServerOutcome::Admitted => (Counter::ServerAdmitted, 0),
        ServerOutcome::Shed => (Counter::ServerShed, 0),
        ServerOutcome::Retried => (Counter::ServerRetries, 0),
        ServerOutcome::Degraded => (Counter::ServerDegraded, 0),
        ServerOutcome::Completed { exec_ns } => (Counter::ServerCompleted, exec_ns),
        ServerOutcome::Failed => (Counter::ServerFailed, 0),
    };
    COUNTERS[counter as usize].fetch_add(1, Ordering::Relaxed);
    let mut s = lock_state();
    let rec = s.tenants.entry(tenant.to_string()).or_default();
    match outcome {
        ServerOutcome::Request => rec.requests += 1,
        ServerOutcome::Admitted => rec.admitted += 1,
        ServerOutcome::Shed => rec.shed += 1,
        ServerOutcome::Retried => rec.retries += 1,
        ServerOutcome::Degraded => rec.degraded += 1,
        ServerOutcome::Completed { .. } => {
            rec.completed += 1;
            rec.exec_ns += exec_ns;
        }
        ServerOutcome::Failed => rec.failed += 1,
    }
}

/// Per-tenant serving-layer totals so far, sorted by tenant name. Empty
/// unless a server recorded [`ServerOutcome`]s while tracing was on.
pub fn tenant_records() -> Vec<TenantRecord> {
    let s = lock_state();
    let mut out: Vec<TenantRecord> = s
        .tenants
        .iter()
        .map(|(name, rec)| TenantRecord { tenant: name.clone(), ..rec.clone() })
        .collect();
    out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    out
}

/// Record a vectorizer effectiveness record and bump the aggregate
/// counters.
pub fn record_specialization(rec: SpecRecord) {
    if !enabled() {
        return;
    }
    COUNTERS[Counter::SpecReplicated as usize].fetch_add(rec.replicated, Ordering::Relaxed);
    COUNTERS[Counter::SpecPromoted as usize].fetch_add(rec.promoted, Ordering::Relaxed);
    COUNTERS[Counter::SpecPackGlue as usize].fetch_add(rec.pack_glue, Ordering::Relaxed);
    COUNTERS[Counter::SpecUnpackGlue as usize].fetch_add(rec.unpack_glue, Ordering::Relaxed);
    COUNTERS[Counter::SpecDceRemoved as usize].fetch_add(rec.dce_removed, Ordering::Relaxed);
    lock_state().specs.push(rec);
}

// ---------------------------------------------------------------------------
// Scoped phase timers
// ---------------------------------------------------------------------------

thread_local! {
    static PHASE_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// RAII timer for a compile phase; records accumulated wall time (keyed
/// by kernel, phase name and nesting depth) when dropped.
#[must_use = "the phase is timed until the guard is dropped"]
pub struct PhaseGuard {
    active: Option<(String, &'static str, Instant, usize)>,
}

/// Start timing `phase` of `kernel`. Nested phases (e.g. individual
/// optimization passes inside `specialize`) record their depth so
/// reports can reconstruct the hierarchy. Returns an inert guard when
/// tracing is disabled.
pub fn phase(kernel: &str, phase: &'static str) -> PhaseGuard {
    if !enabled() {
        return PhaseGuard { active: None };
    }
    let depth = PHASE_DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    PhaseGuard { active: Some((kernel.to_string(), phase, Instant::now(), depth)) }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((kernel, phase, start, depth)) = self.active.take() {
            let ns = start.elapsed().as_nanos() as u64;
            PHASE_DEPTH.with(|d| d.set(depth));
            let mut s = lock_state();
            let totals = s.phases.entry((kernel, phase, depth)).or_default();
            totals.calls += 1;
            totals.total_ns += ns;
        }
    }
}

// ---------------------------------------------------------------------------
// Reset + snapshot plumbing (used by report.rs)
// ---------------------------------------------------------------------------

/// Clear all recorded data (counters, histograms, events, timers,
/// timeline spans, µop profiles). The enabled flag is left as-is.
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for c in &OCCUPANCY {
        c.store(0, Ordering::Relaxed);
    }
    timeline::reset_timeline();
    profile::reset_profile();
    let mut s = lock_state();
    s.names.clear();
    s.by_name.clear();
    s.events.clear();
    s.phases.clear();
    s.specs.clear();
    s.tenants.clear();
    s.width_use.clear();
    s.width_chosen.clear();
}

pub(crate) struct FullSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub occupancy: Vec<u64>,
    pub names: Vec<String>,
    pub events: Vec<Event>,
    pub phases: Vec<(String, &'static str, usize, u64, u64)>,
    pub specs: Vec<SpecRecord>,
    pub tenants: Vec<TenantRecord>,
    /// `(kernel, width, warps)` sorted by `(kernel, width)`.
    pub width_use: Vec<(String, u32, u64)>,
    /// `(kernel, chosen width)` sorted by kernel.
    pub width_chosen: Vec<(String, u32)>,
}

pub(crate) fn full_snapshot() -> FullSnapshot {
    let s = lock_state();
    let mut phases: Vec<_> = s
        .phases
        .iter()
        .map(|((kernel, phase, depth), t)| (kernel.clone(), *phase, *depth, t.calls, t.total_ns))
        .collect();
    phases.sort();
    let mut specs = s.specs.clone();
    specs.sort_by(|a, b| {
        (a.kernel.as_str(), a.warp_size, a.variant).cmp(&(
            b.kernel.as_str(),
            b.warp_size,
            b.variant,
        ))
    });
    let mut tenants: Vec<TenantRecord> = s
        .tenants
        .iter()
        .map(|(name, rec)| TenantRecord { tenant: name.clone(), ..rec.clone() })
        .collect();
    tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    let mut width_use: Vec<(String, u32, u64)> =
        s.width_use.iter().map(|((k, w), n)| (k.clone(), *w, *n)).collect();
    width_use.sort();
    let mut width_chosen: Vec<(String, u32)> =
        s.width_chosen.iter().map(|(k, w)| (k.clone(), *w)).collect();
    width_chosen.sort();
    FullSnapshot {
        counters: Counter::ALL.iter().map(|&c| (c.name(), counter(c))).collect(),
        occupancy: occupancy_histogram(),
        names: s.names.clone(),
        events: s.events.clone(),
        phases,
        specs,
        tenants,
        width_use,
        width_chosen,
    }
}

// ---------------------------------------------------------------------------
// Live metrics snapshots
// ---------------------------------------------------------------------------

/// A point-in-time view of the metrics registry (counters + the warp
/// occupancy histogram), cheap to capture (no locks — two fixed atomic
/// arrays) and delta-capable: subtracting an earlier snapshot yields
/// exactly the work done in between. This is the polling interface a
/// `/metrics` endpoint or a benchmark harness uses instead of the
/// export-once-at-exit report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; NUM_COUNTERS],
    occupancy: [u64; MAX_TRACKED_WIDTH + 1],
}

/// Capture a [`MetricsSnapshot`] of the current counter and occupancy
/// values. Works whether or not tracing is enabled (disabled tracing
/// simply yields all-zero deltas).
pub fn snapshot() -> MetricsSnapshot {
    let mut counters = [0u64; NUM_COUNTERS];
    for (slot, c) in counters.iter_mut().zip(&COUNTERS) {
        *slot = c.load(Ordering::Relaxed);
    }
    let mut occupancy = [0u64; MAX_TRACKED_WIDTH + 1];
    for (slot, c) in occupancy.iter_mut().zip(&OCCUPANCY) {
        *slot = c.load(Ordering::Relaxed);
    }
    MetricsSnapshot { counters, occupancy }
}

impl Counter {
    /// Whether this counter is a high-water mark (recorded with
    /// [`record_peak`]) rather than a monotonic sum. Peaks cannot be
    /// meaningfully subtracted; snapshot deltas carry the later
    /// snapshot's value through unchanged.
    pub fn is_peak(self) -> bool {
        matches!(self, Counter::StreamQueuePeak | Counter::PoolBusyPeak)
    }
}

impl MetricsSnapshot {
    /// Value of one counter at capture time.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Iterate `(name, value)` over every counter, in declaration order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL.iter().map(move |&c| (c.name(), self.counters[c as usize]))
    }

    /// The warp-occupancy histogram at capture time, trailing zero
    /// buckets trimmed.
    pub fn occupancy(&self) -> Vec<u64> {
        let mut hist = self.occupancy.to_vec();
        while hist.last() == Some(&0) {
            hist.pop();
        }
        hist
    }

    /// The work recorded between `baseline` and `self`: monotonic
    /// counters and occupancy buckets are subtracted (saturating, so a
    /// `reset` between snapshots cannot underflow); peak counters
    /// ([`Counter::is_peak`]) keep `self`'s value.
    pub fn delta(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for c in Counter::ALL {
            if !c.is_peak() {
                let i = c as usize;
                out.counters[i] = self.counters[i].saturating_sub(baseline.counters[i]);
            }
        }
        for i in 0..out.occupancy.len() {
            out.occupancy[i] = self.occupancy[i].saturating_sub(baseline.occupancy[i]);
        }
        out
    }
}

impl std::ops::Sub for MetricsSnapshot {
    type Output = MetricsSnapshot;

    /// `later - earlier` = the work done in between (see
    /// [`MetricsSnapshot::delta`]).
    fn sub(self, baseline: MetricsSnapshot) -> MetricsSnapshot {
        self.delta(&baseline)
    }
}

impl std::ops::Sub for &MetricsSnapshot {
    type Output = MetricsSnapshot;

    fn sub(self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        self.delta(baseline)
    }
}

// Trace state is process-global; tests (including the timeline and
// profile submodules') serialize on this lock and reset around
// themselves.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        test_serial()
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = serial();
        disable();
        reset();
        add(Counter::CacheHit, 3);
        record_yield("k", 1, YieldReason::Branch, 4);
        record_warp_entry(4, 2);
        let _t = phase("k", "translate");
        drop(_t);
        assert_eq!(counter(Counter::CacheHit), 0);
        assert_eq!(counter(Counter::YieldBranch), 0);
        assert!(occupancy_histogram().is_empty());
        assert!(full_snapshot().events.is_empty());
        assert!(full_snapshot().phases.is_empty());
    }

    #[test]
    fn enabled_records_counters_events_and_histogram() {
        let _g = serial();
        enable();
        reset();
        add(Counter::CacheHit, 2);
        record_yield("k", 3, YieldReason::Barrier, 2);
        record_warp_entry(2, 5);
        record_warp_entry(4, 1);
        assert_eq!(counter(Counter::CacheHit), 2);
        assert_eq!(counter(Counter::YieldBarrier), 1);
        assert_eq!(counter(Counter::WarpEntries), 2);
        assert_eq!(counter(Counter::ThreadEntries), 6);
        assert_eq!(counter(Counter::ScanSteps), 6);
        let hist = occupancy_histogram();
        assert_eq!(hist[2], 1);
        assert_eq!(hist[4], 1);
        let snap = full_snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.names, vec!["k".to_string()]);
        disable();
        reset();
    }

    #[test]
    fn phase_guards_nest_and_accumulate() {
        let _g = serial();
        enable();
        reset();
        {
            let _outer = phase("k", "specialize");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = phase("k", "opt:dce");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let snap = full_snapshot();
        let outer = snap.phases.iter().find(|(_, p, ..)| *p == "specialize").unwrap();
        let inner = snap.phases.iter().find(|(_, p, ..)| *p == "opt:dce").unwrap();
        assert_eq!(outer.2, 0, "outer phase at depth 0");
        assert_eq!(inner.2, 1, "inner phase nested at depth 1");
        assert!(inner.4 <= outer.4, "inner time contained in outer");
        disable();
        reset();
    }

    #[test]
    fn event_capacity_parses_and_clamps() {
        assert_eq!(parse_event_capacity(None), EVENT_CAPACITY);
        assert_eq!(parse_event_capacity(Some("not a number")), EVENT_CAPACITY);
        assert_eq!(parse_event_capacity(Some("65536")), 65536);
        assert_eq!(parse_event_capacity(Some(" 8192 ")), 8192);
        assert_eq!(parse_event_capacity(Some("1")), 16, "clamped to the floor");
        assert_eq!(parse_event_capacity(Some("999999999999")), 1 << 22, "clamped to the cap");
    }

    #[test]
    fn snapshot_delta_is_the_work_in_between() {
        let _g = serial();
        enable();
        reset();
        add(Counter::CacheHit, 5);
        record_peak(Counter::PoolBusyPeak, 3);
        let before = snapshot();
        add(Counter::CacheHit, 2);
        add(Counter::LaunchesSubmitted, 1);
        record_warp_entry(4, 1);
        record_peak(Counter::PoolBusyPeak, 7);
        let after = snapshot();
        let delta = &after - &before;
        assert_eq!(delta.counter(Counter::CacheHit), 2);
        assert_eq!(delta.counter(Counter::LaunchesSubmitted), 1);
        assert_eq!(delta.counter(Counter::WarpEntries), 1);
        assert_eq!(delta.counter(Counter::ThreadEntries), 4);
        // Peaks carry the later snapshot's value, not a difference.
        assert_eq!(delta.counter(Counter::PoolBusyPeak), 7);
        // Occupancy deltas too.
        assert_eq!(delta.occupancy()[4], 1);
        // The owned Sub form agrees.
        assert_eq!(after.clone() - before.clone(), delta);
        // An empty interval deltas to zero everywhere (peaks aside).
        let idle = snapshot().delta(&after);
        assert!(idle.counters().all(|(n, v)| v == 0 || n.ends_with("_peak")));
        disable();
        reset();
    }

    #[test]
    fn server_outcomes_accumulate_per_tenant_and_globally() {
        let _g = serial();
        enable();
        reset();
        for _ in 0..3 {
            record_server("alpha", ServerOutcome::Request);
        }
        record_server("alpha", ServerOutcome::Admitted);
        record_server("alpha", ServerOutcome::Retried);
        record_server("alpha", ServerOutcome::Completed { exec_ns: 1_000 });
        record_server("beta", ServerOutcome::Request);
        record_server("beta", ServerOutcome::Shed);
        record_server("beta", ServerOutcome::Degraded);
        record_server("beta", ServerOutcome::Failed);
        assert_eq!(counter(Counter::ServerRequests), 4);
        assert_eq!(counter(Counter::ServerAdmitted), 1);
        assert_eq!(counter(Counter::ServerShed), 1);
        assert_eq!(counter(Counter::ServerRetries), 1);
        assert_eq!(counter(Counter::ServerDegraded), 1);
        assert_eq!(counter(Counter::ServerCompleted), 1);
        assert_eq!(counter(Counter::ServerFailed), 1);
        let tenants = tenant_records();
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].tenant, "alpha", "sorted by name");
        assert_eq!(tenants[0].requests, 3);
        assert_eq!(tenants[0].completed, 1);
        assert_eq!(tenants[0].exec_ns, 1_000);
        assert_eq!(tenants[1].tenant, "beta");
        assert_eq!(tenants[1].shed, 1);
        assert_eq!(tenants[1].degraded, 1);
        assert_eq!(tenants[1].failed, 1);
        disable();
        reset();
    }

    #[test]
    fn server_records_are_dark_when_disabled() {
        let _g = serial();
        disable();
        reset();
        record_server("ghost", ServerOutcome::Request);
        assert_eq!(counter(Counter::ServerRequests), 0);
        assert!(tenant_records().is_empty());
    }

    #[test]
    fn event_ring_is_bounded() {
        let _g = serial();
        enable();
        reset();
        for i in 0..(EVENT_CAPACITY as u32 + 10) {
            record_yield("k", i, YieldReason::Exit, 1);
        }
        assert_eq!(full_snapshot().events.len(), EVENT_CAPACITY);
        assert_eq!(counter(Counter::EventsDropped), 10);
        // Aggregate counters still see every yield.
        assert_eq!(counter(Counter::YieldExit), EVENT_CAPACITY as u64 + 10);
        disable();
        reset();
    }
}
