//! Snapshotting recorded trace data into a serializable, printable
//! report.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::profile::{self, UopProfile};
use crate::timeline::{self, SpanTotal};
use crate::{full_snapshot, Event, SpecRecord, TenantRecord};

/// Accumulated wall time of one compile phase of one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseReport {
    /// Kernel (or function) the phase ran for.
    pub kernel: String,
    /// Phase name (`parse`, `translate`, `specialize`, `opt:<pass>`).
    pub phase: String,
    /// Nesting depth at which the phase ran (optimization passes run at
    /// depth `specialize` + 1).
    pub depth: usize,
    /// Number of times the phase ran.
    pub calls: u64,
    /// Total wall time across all calls.
    pub total_ns: u64,
}

/// One structured event with interned kernel names resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventReport {
    /// A warp returned to the execution manager.
    Yield {
        /// Kernel name.
        kernel: String,
        /// Entry point the warp resumes at.
        entry_point: u32,
        /// `"branch"`, `"barrier"` or `"exit"`.
        reason: &'static str,
        /// Warp width.
        width: u32,
    },
    /// A translation-cache lookup.
    CacheQuery {
        /// Kernel name.
        kernel: String,
        /// Requested warp size.
        warp_size: u32,
        /// Requested variant.
        variant: &'static str,
        /// Served from cache?
        hit: bool,
    },
    /// A compilation triggered by a cache miss.
    Compile {
        /// Kernel name.
        kernel: String,
        /// Compiled warp size.
        warp_size: u32,
        /// Compiled variant.
        variant: &'static str,
        /// Compilation wall time.
        ns: u64,
    },
    /// A specialization failed to compile and launches now fall back to
    /// the scalar baseline for it.
    Downgrade {
        /// Kernel name.
        kernel: String,
        /// Requested (refused) warp size.
        warp_size: u32,
        /// Requested variant.
        variant: &'static str,
        /// The failure that caused the downgrade.
        detail: String,
    },
    /// An execution fault escaped a launch.
    Fault {
        /// Kernel name.
        kernel: String,
        /// Rendered error, provenance included.
        detail: String,
    },
    /// A launch entered or left a stream's ordered queue.
    Stream {
        /// Kernel name.
        kernel: String,
        /// Stream identifier.
        stream: u64,
        /// Launches queued behind the stream's active job.
        depth: u32,
        /// `true` on submit, `false` on retire.
        submit: bool,
    },
    /// The adaptive width policy scheduled a background
    /// respecialization.
    Respec {
        /// Kernel name.
        kernel: String,
        /// Width launches were running at.
        from: u32,
        /// Candidate width being compiled.
        to: u32,
        /// Launches observed when the candidate was scheduled.
        launches: u64,
    },
    /// The adaptive width policy committed a final width.
    WidthChoice {
        /// Kernel name.
        kernel: String,
        /// The committed width.
        width: u32,
    },
}

/// A point-in-time snapshot of everything the tracer has recorded,
/// serializable to JSON and printable as a summary table.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// All counters, in declaration order, as `(name, value)`.
    pub counters: Vec<(&'static str, u64)>,
    /// Warp-occupancy histogram (`occupancy[w]` = entries at width `w`).
    pub occupancy: Vec<u64>,
    /// Per-kernel compile-phase timings.
    pub phases: Vec<PhaseReport>,
    /// Vectorizer effectiveness per specialization.
    pub specializations: Vec<SpecRecord>,
    /// Structured events, oldest first (bounded; see
    /// [`events_dropped`](Self::events_dropped)).
    pub events: Vec<EventReport>,
    /// Events discarded after the ring filled.
    pub events_dropped: u64,
    /// Flight-recorder span totals per launch phase (queue-wait,
    /// translate, ..., retire), in pipeline order.
    pub span_totals: Vec<SpanTotal>,
    /// µop profiles per kernel × specialization × engine path.
    pub uop_profiles: Vec<UopProfile>,
    /// Per-tenant serving-layer totals (admission, shedding, retries,
    /// degradation), sorted by tenant name; empty when no server ran.
    pub tenants: Vec<TenantRecord>,
    /// Warps dispatched per `(kernel, width, warps)`, sorted by
    /// `(kernel, width)` — the per-width occupancy the adaptive policy
    /// steers on.
    pub width_occupancy: Vec<(String, u32, u64)>,
    /// `(kernel, width)` committed by the adaptive policy, sorted by
    /// kernel; empty unless exploration converged under
    /// `DPVK_ADAPT=on`.
    pub width_chosen: Vec<(String, u32)>,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl TraceReport {
    /// Capture a snapshot of the current trace state.
    pub fn capture() -> TraceReport {
        let snap = full_snapshot();
        let name_of = |id: u32| {
            snap.names.get(id as usize).cloned().unwrap_or_else(|| format!("<kernel {id}>"))
        };
        let events = snap
            .events
            .iter()
            .map(|e| match *e {
                Event::Yield { kernel, entry_point, reason, width } => EventReport::Yield {
                    kernel: name_of(kernel),
                    entry_point,
                    reason: reason.name(),
                    width,
                },
                Event::CacheQuery { kernel, warp_size, variant, hit } => {
                    EventReport::CacheQuery { kernel: name_of(kernel), warp_size, variant, hit }
                }
                Event::Compile { kernel, warp_size, variant, ns } => {
                    EventReport::Compile { kernel: name_of(kernel), warp_size, variant, ns }
                }
                Event::Downgrade { kernel, warp_size, variant, detail } => EventReport::Downgrade {
                    kernel: name_of(kernel),
                    warp_size,
                    variant,
                    detail: name_of(detail),
                },
                Event::Fault { kernel, detail } => {
                    EventReport::Fault { kernel: name_of(kernel), detail: name_of(detail) }
                }
                Event::Stream { kernel, stream, depth, submit } => {
                    EventReport::Stream { kernel: name_of(kernel), stream, depth, submit }
                }
                Event::Respec { kernel, from, to, launches } => {
                    EventReport::Respec { kernel: name_of(kernel), from, to, launches }
                }
                Event::WidthChoice { kernel, width } => {
                    EventReport::WidthChoice { kernel: name_of(kernel), width }
                }
            })
            .collect();
        let events_dropped =
            snap.counters.iter().find(|(n, _)| *n == "events_dropped").map_or(0, |&(_, v)| v);
        TraceReport {
            counters: snap.counters,
            occupancy: snap.occupancy,
            phases: snap
                .phases
                .into_iter()
                .map(|(kernel, phase, depth, calls, total_ns)| PhaseReport {
                    kernel,
                    phase: phase.to_string(),
                    depth,
                    calls,
                    total_ns,
                })
                .collect(),
            specializations: snap.specs,
            events,
            events_dropped,
            span_totals: timeline::span_totals(),
            uop_profiles: profile::profiles(),
            tenants: snap.tenants,
            width_occupancy: snap.width_use,
            width_chosen: snap.width_chosen,
        }
    }

    /// Value of a counter by report name (0 for unknown names).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |&(_, v)| v)
    }

    /// Serialize to a single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut j = Json::new();
        j.open_obj(None);
        j.open_obj(Some("counters"));
        for &(name, value) in &self.counters {
            j.field_u64(name, value);
        }
        j.close_obj();
        j.open_arr(Some("warp_occupancy"));
        for &n in &self.occupancy {
            j.elem_u64(n);
        }
        j.close_arr();
        j.open_obj(Some("yield_reasons"));
        j.field_u64("branch", self.counter("yield_branch"));
        j.field_u64("barrier", self.counter("yield_barrier"));
        j.field_u64("exit", self.counter("yield_exit"));
        j.close_obj();
        j.open_arr(Some("compile_phases"));
        for p in &self.phases {
            j.open_obj(None);
            j.field_str("kernel", &p.kernel);
            j.field_str("phase", &p.phase);
            j.field_u64("depth", p.depth as u64);
            j.field_u64("calls", p.calls);
            j.field_u64("total_ns", p.total_ns);
            j.close_obj();
        }
        j.close_arr();
        j.open_arr(Some("specializations"));
        for s in &self.specializations {
            j.open_obj(None);
            j.field_str("kernel", &s.kernel);
            j.field_u64("warp_size", u64::from(s.warp_size));
            j.field_str("variant", s.variant);
            j.field_u64("pre_opt_instructions", s.pre_opt_instructions);
            j.field_u64("post_opt_instructions", s.post_opt_instructions);
            j.field_u64("replicated", s.replicated);
            j.field_u64("promoted", s.promoted);
            j.field_u64("pack_glue", s.pack_glue);
            j.field_u64("unpack_glue", s.unpack_glue);
            j.field_u64("dce_removed", s.dce_removed);
            j.close_obj();
        }
        j.close_arr();
        j.open_obj(Some("span_totals"));
        for t in &self.span_totals {
            j.open_obj(Some(t.kind.name()));
            j.field_u64("calls", t.calls);
            j.field_u64("total_ns", t.total_ns);
            j.close_obj();
        }
        j.close_obj();
        j.open_arr(Some("uop_profile"));
        for p in &self.uop_profiles {
            j.open_obj(None);
            j.field_str("kernel", &p.kernel);
            j.field_u64("warp_size", u64::from(p.warp_size));
            j.field_str("variant", &p.variant);
            j.field_str("path", p.path);
            j.open_arr(Some("uops"));
            for r in &p.rows {
                j.open_obj(None);
                j.field_str("uop", r.uop);
                j.field_bool("fused", r.fused);
                j.field_u64("hits", r.hits);
                j.field_u64("cycles", r.cycles);
                j.field_u64("static_ops", r.static_ops);
                j.close_obj();
            }
            j.close_arr();
            j.close_obj();
        }
        j.close_arr();
        j.open_arr(Some("tenants"));
        for t in &self.tenants {
            j.open_obj(None);
            j.field_str("tenant", &t.tenant);
            j.field_u64("requests", t.requests);
            j.field_u64("admitted", t.admitted);
            j.field_u64("shed", t.shed);
            j.field_u64("retries", t.retries);
            j.field_u64("degraded", t.degraded);
            j.field_u64("completed", t.completed);
            j.field_u64("failed", t.failed);
            j.field_u64("exec_ns", t.exec_ns);
            j.close_obj();
        }
        j.close_arr();
        j.open_arr(Some("width_occupancy"));
        for (kernel, width, warps) in &self.width_occupancy {
            j.open_obj(None);
            j.field_str("kernel", kernel);
            j.field_u64("width", u64::from(*width));
            j.field_u64("warps", *warps);
            j.close_obj();
        }
        j.close_arr();
        j.open_arr(Some("width_chosen"));
        for (kernel, width) in &self.width_chosen {
            j.open_obj(None);
            j.field_str("kernel", kernel);
            j.field_u64("width", u64::from(*width));
            j.close_obj();
        }
        j.close_arr();
        j.field_u64("events_dropped", self.events_dropped);
        j.open_arr(Some("events"));
        for e in &self.events {
            j.open_obj(None);
            match e {
                EventReport::Yield { kernel, entry_point, reason, width } => {
                    j.field_str("type", "yield");
                    j.field_str("kernel", kernel);
                    j.field_u64("entry_point", u64::from(*entry_point));
                    j.field_str("reason", reason);
                    j.field_u64("width", u64::from(*width));
                }
                EventReport::CacheQuery { kernel, warp_size, variant, hit } => {
                    j.field_str("type", "cache_query");
                    j.field_str("kernel", kernel);
                    j.field_u64("warp_size", u64::from(*warp_size));
                    j.field_str("variant", variant);
                    j.field_bool("hit", *hit);
                }
                EventReport::Compile { kernel, warp_size, variant, ns } => {
                    j.field_str("type", "compile");
                    j.field_str("kernel", kernel);
                    j.field_u64("warp_size", u64::from(*warp_size));
                    j.field_str("variant", variant);
                    j.field_u64("ns", *ns);
                }
                EventReport::Downgrade { kernel, warp_size, variant, detail } => {
                    j.field_str("type", "downgrade");
                    j.field_str("kernel", kernel);
                    j.field_u64("warp_size", u64::from(*warp_size));
                    j.field_str("variant", variant);
                    j.field_str("detail", detail);
                }
                EventReport::Fault { kernel, detail } => {
                    j.field_str("type", "fault");
                    j.field_str("kernel", kernel);
                    j.field_str("detail", detail);
                }
                EventReport::Stream { kernel, stream, depth, submit } => {
                    j.field_str("type", "stream");
                    j.field_str("kernel", kernel);
                    j.field_u64("stream", *stream);
                    j.field_u64("depth", u64::from(*depth));
                    j.field_bool("submit", *submit);
                }
                EventReport::Respec { kernel, from, to, launches } => {
                    j.field_str("type", "respec");
                    j.field_str("kernel", kernel);
                    j.field_u64("from", u64::from(*from));
                    j.field_u64("to", u64::from(*to));
                    j.field_u64("launches", *launches);
                }
                EventReport::WidthChoice { kernel, width } => {
                    j.field_str("type", "width_choice");
                    j.field_str("kernel", kernel);
                    j.field_u64("width", u64::from(*width));
                }
            }
            j.close_obj();
        }
        j.close_arr();
        j.close_obj();
        j.finish()
    }

    /// Render a human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "dpvk-trace summary");
        let _ = writeln!(
            out,
            "  cache: {} hits / {} misses, compile {}",
            self.counter("cache_hit"),
            self.counter("cache_miss"),
            fmt_ns(self.counter("cache_compile_ns")),
        );
        let _ = writeln!(
            out,
            "  yields: branch {}, barrier {}, exit {}",
            self.counter("yield_branch"),
            self.counter("yield_barrier"),
            self.counter("yield_exit"),
        );
        let entries = self.counter("warp_entries");
        if entries > 0 {
            let mut mix = String::new();
            for (w, &n) in self.occupancy.iter().enumerate() {
                if n > 0 {
                    let _ = write!(mix, " w{w}:{n}");
                }
            }
            let _ = writeln!(
                out,
                "  warp occupancy:{} (avg {:.2}); formation scanned {} slots",
                mix,
                self.counter("thread_entries") as f64 / entries as f64,
                self.counter("scan_steps"),
            );
        }
        let (spill, restore) = (self.counter("spill_bytes"), self.counter("restore_bytes"));
        if spill > 0 || restore > 0 {
            let _ = writeln!(out, "  live state: {spill} B spilled, {restore} B restored");
        }
        if !self.phases.is_empty() {
            let _ = writeln!(out, "  compile phases (kernel · phase · calls · total):");
            for p in &self.phases {
                let _ = writeln!(
                    out,
                    "    {:<24} {}{:<16} {:>5}  {}",
                    p.kernel,
                    "  ".repeat(p.depth),
                    p.phase,
                    p.calls,
                    fmt_ns(p.total_ns),
                );
            }
        }
        if !self.specializations.is_empty() {
            let _ = writeln!(
                out,
                "  specializations (kernel · w · variant · insts pre→post · vec/scalar · glue · dce):"
            );
            for s in &self.specializations {
                let _ = writeln!(
                    out,
                    "    {:<24} {:>2}  {:<10} {:>4}→{:<4} {:>4}/{:<4} {:>4} {:>4}",
                    s.kernel,
                    s.warp_size,
                    s.variant,
                    s.pre_opt_instructions,
                    s.post_opt_instructions,
                    s.promoted,
                    s.replicated,
                    s.pack_glue + s.unpack_glue,
                    s.dce_removed,
                );
            }
        }
        let (submitted, retired) =
            (self.counter("launches_submitted"), self.counter("launches_retired"));
        if submitted > 0 || retired > 0 {
            let _ = writeln!(
                out,
                "  launches: {submitted} submitted, {retired} retired; peak stream queue {}, \
                 peak pool occupancy {}",
                self.counter("stream_queue_peak"),
                self.counter("pool_busy_peak"),
            );
        }
        let (downgraded, cancelled, spec_failures, faults) = (
            self.counter("downgraded_warps"),
            self.counter("cancelled_warps"),
            self.counter("spec_failures"),
            self.counter("faults"),
        );
        if downgraded > 0 || cancelled > 0 || spec_failures > 0 || faults > 0 {
            let _ = writeln!(
                out,
                "  degradation: {spec_failures} failed specializations, {downgraded} warps \
                 downgraded to scalar, {cancelled} warps cancelled, {faults} faults",
            );
        }
        let requests = self.counter("server_requests");
        if requests > 0 || !self.tenants.is_empty() {
            let _ = writeln!(
                out,
                "  server: {requests} requests, {} admitted, {} shed, {} retries, {} degraded, \
                 {} completed, {} failed",
                self.counter("server_admitted"),
                self.counter("server_shed"),
                self.counter("server_retries"),
                self.counter("server_degraded"),
                self.counter("server_completed"),
                self.counter("server_failed"),
            );
            if !self.tenants.is_empty() {
                let _ = writeln!(
                    out,
                    "  tenants (name · req · adm · shed · retry · degr · done · fail · exec):"
                );
                for t in &self.tenants {
                    let _ = writeln!(
                        out,
                        "    {:<20} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}  {}",
                        t.tenant,
                        t.requests,
                        t.admitted,
                        t.shed,
                        t.retries,
                        t.degraded,
                        t.completed,
                        t.failed,
                        fmt_ns(t.exec_ns),
                    );
                }
            }
        }
        let respecs = self.counter("respec_events");
        if respecs > 0 || !self.width_chosen.is_empty() {
            let _ = writeln!(
                out,
                "  adaptation: {respecs} respecializations, {} width switches",
                self.counter("width_switches"),
            );
            for (kernel, width) in &self.width_chosen {
                let _ = writeln!(out, "    {kernel}: chose width {width}");
            }
        }
        if self.span_totals.iter().any(|t| t.calls > 0) {
            let _ = writeln!(out, "  launch phases (span · calls · total):");
            for t in &self.span_totals {
                if t.calls == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "    {:<16} {:>6}  {}",
                    t.kind.name(),
                    t.calls,
                    fmt_ns(t.total_ns)
                );
            }
        }
        if !self.uop_profiles.is_empty() {
            let total: u64 =
                self.uop_profiles.iter().flat_map(|p| p.rows.iter().map(|r| r.cycles)).sum();
            let mut rows: Vec<(&UopProfile, &profile::UopRow)> = self
                .uop_profiles
                .iter()
                .flat_map(|p| p.rows.iter().map(move |r| (p, r)))
                .filter(|(_, r)| r.cycles > 0 || r.hits > 0)
                .collect();
            rows.sort_by_key(|r| std::cmp::Reverse(r.1.cycles));
            let shown = rows.len().min(10);
            let _ = writeln!(
                out,
                "  µop hotspots (top {shown} of {}; kernel · spec · path · µop · hits · cycles):",
                rows.len()
            );
            for (p, r) in rows.iter().take(shown) {
                let pct = if total > 0 { 100.0 * r.cycles as f64 / total as f64 } else { 0.0 };
                let _ = writeln!(
                    out,
                    "    {:<20} w{:<3}{:<10} {:<8} {:<12} {:>10} {:>12} ({pct:>5.1}%)",
                    p.kernel, p.warp_size, p.variant, p.path, r.uop, r.hits, r.cycles,
                );
            }
            let _ = writeln!(out, "  µop cycles attributed: {total}");
        }
        if self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "  events: {} recorded, {} dropped (ring full)",
                self.events.len(),
                self.events_dropped
            );
        }
        out
    }

    /// Write the JSON report to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Any I/O error creating directories or writing the file.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// The default report location: `$DPVK_TRACE_OUT` if set, else
    /// `target/dpvk-trace.json` relative to the working directory.
    pub fn default_path() -> PathBuf {
        std::env::var_os("DPVK_TRACE_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/dpvk-trace.json"))
    }

    /// Write the JSON report to [`default_path`](Self::default_path) and
    /// return where it went.
    ///
    /// # Errors
    ///
    /// See [`write_to`](Self::write_to).
    pub fn write_default(&self) -> io::Result<PathBuf> {
        let path = Self::default_path();
        self.write_to(&path)?;
        Ok(path)
    }
}

/// If tracing is enabled, capture a report, write it to the default
/// path, print the summary to stdout, and return the path. No-op
/// returning `None` when tracing is disabled.
///
/// This is the one-liner examples and bench binaries call last thing in
/// `main`.
///
/// # Errors
///
/// Any I/O error writing the report file.
pub fn write_if_enabled() -> io::Result<Option<PathBuf>> {
    if !crate::enabled() {
        return Ok(None);
    }
    let report = TraceReport::capture();
    let path = report.write_default()?;
    print!("{}", report.summary());
    println!("  report: {}", path.display());
    if report.span_totals.iter().any(|t| t.calls > 0) {
        let timeline_path = timeline::default_timeline_path();
        timeline::write_chrome_trace(&timeline_path)?;
        println!("  timeline: {} (load in Perfetto / chrome://tracing)", timeline_path.display());
    }
    if !report.uop_profiles.is_empty() {
        let folded_path = profile::default_folded_path();
        profile::write_folded(&folded_path)?;
        println!("  µop profile: {} (collapsed stacks)", folded_path.display());
    }
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_serializes() {
        let report = TraceReport {
            counters: vec![("cache_hit", 0)],
            occupancy: vec![],
            phases: vec![],
            specializations: vec![],
            events: vec![],
            events_dropped: 0,
            span_totals: vec![],
            uop_profiles: vec![],
            tenants: vec![],
            width_occupancy: vec![],
            width_chosen: vec![],
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cache_hit\":0"));
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn json_contains_all_sections() {
        let report = TraceReport {
            counters: vec![("yield_branch", 2), ("warp_entries", 1)],
            occupancy: vec![0, 0, 0, 0, 3],
            phases: vec![PhaseReport {
                kernel: "k".into(),
                phase: "translate".into(),
                depth: 0,
                calls: 1,
                total_ns: 42,
            }],
            specializations: vec![crate::SpecRecord {
                kernel: "k".into(),
                warp_size: 4,
                variant: "dynamic",
                pre_opt_instructions: 100,
                post_opt_instructions: 80,
                replicated: 10,
                promoted: 50,
                pack_glue: 5,
                unpack_glue: 6,
                dce_removed: 20,
            }],
            events: vec![EventReport::Yield {
                kernel: "k".into(),
                entry_point: 2,
                reason: "branch",
                width: 4,
            }],
            events_dropped: 0,
            span_totals: vec![],
            uop_profiles: vec![],
            tenants: vec![],
            width_occupancy: vec![],
            width_chosen: vec![],
        };
        let json = report.to_json();
        for needle in [
            "\"warp_occupancy\":[0,0,0,0,3]",
            "\"compile_phases\":[{\"kernel\":\"k\",\"phase\":\"translate\"",
            "\"specializations\":[{\"kernel\":\"k\",\"warp_size\":4",
            "\"events\":[{\"type\":\"yield\"",
            "\"yield_reasons\":{\"branch\":2",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn downgrade_and_fault_events_serialize_and_summarize() {
        let report = TraceReport {
            counters: vec![
                ("downgraded_warps", 3),
                ("cancelled_warps", 1),
                ("spec_failures", 1),
                ("faults", 2),
            ],
            occupancy: vec![],
            phases: vec![],
            specializations: vec![],
            events: vec![
                EventReport::Downgrade {
                    kernel: "k".into(),
                    warp_size: 4,
                    variant: "dynamic",
                    detail: "verify error in `k`".into(),
                },
                EventReport::Fault {
                    kernel: "k".into(),
                    detail: "execution fault at kernel `k`, CTA 3".into(),
                },
            ],
            events_dropped: 0,
            span_totals: vec![],
            uop_profiles: vec![],
            tenants: vec![],
            width_occupancy: vec![],
            width_chosen: vec![],
        };
        let json = report.to_json();
        for needle in [
            "\"type\":\"downgrade\"",
            "\"detail\":\"verify error in `k`\"",
            "\"type\":\"fault\"",
            "CTA 3",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let summary = report.summary();
        assert!(summary.contains("3 warps downgraded"), "{summary}");
        assert!(summary.contains("1 warps cancelled"), "{summary}");
    }
}
