//! Span-based per-launch timeline — the "flight recorder".
//!
//! Every launch is assigned a monotonically increasing sequence number at
//! submission and accumulates nested spans as it moves through the
//! pipeline: queue-wait (submission to first worker pickup), translate /
//! specialize / decode (compile phases, attributed to the launch that
//! triggered them), per-chunk execute with a coalesced gather child, and
//! retire. Spans are tagged with the stream id (0 = direct, unstreamed)
//! and — when they were produced on a pool worker thread — the worker's
//! track id, so the Chrome-trace export renders one track per worker and
//! one per stream.
//!
//! Like the rest of `dpvk-trace`, the recorder is disabled by default:
//! every entry point is gated on [`crate::enabled`], one relaxed atomic
//! load on the fast path.

use std::cell::Cell;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

// ---------------------------------------------------------------------------
// Clock + identifiers
// ---------------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the recorder's process-wide epoch (first use).
/// Span start timestamps are expressed on this clock.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static LAUNCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Allocate the next launch sequence number (1-based; 0 means "no
/// launch"). Called once per traced launch at submission.
pub fn next_launch_seq() -> u64 {
    LAUNCH_SEQ.fetch_add(1, Ordering::Relaxed) + 1
}

static WORKER_IDS: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static WORKER_TRACK: Cell<u32> = const { Cell::new(u32::MAX) };
    static CURRENT_LAUNCH: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Register the calling thread as a pool worker and return its track id.
/// Worker ids are process-unique and stable for the thread's lifetime;
/// spans recorded on this thread (including compile phases that happen to
/// run on it) are attributed to its track.
pub fn register_worker() -> u32 {
    let id = WORKER_IDS.fetch_add(1, Ordering::Relaxed);
    WORKER_TRACK.with(|t| t.set(id));
    id
}

/// The calling thread's worker track, if [`register_worker`] ran on it.
pub fn worker_track() -> Option<u32> {
    WORKER_TRACK.with(|t| {
        let v = t.get();
        (v != u32::MAX).then_some(v)
    })
}

/// Number of worker tracks registered so far.
pub fn worker_count() -> u32 {
    WORKER_IDS.load(Ordering::Relaxed)
}

/// RAII scope marking the calling thread as working on behalf of a
/// launch, so spans recorded deeper in the call stack (e.g. a cache miss
/// compiling inside a chunk) inherit the launch's seq and stream.
#[must_use = "the launch context lasts until the scope is dropped"]
pub struct LaunchScope {
    prev: (u64, u64),
}

/// Enter a launch context (see [`LaunchScope`]). The previous context is
/// restored when the returned scope drops, even on unwind.
pub fn launch_scope(seq: u64, stream: u64) -> LaunchScope {
    let prev = CURRENT_LAUNCH.with(|c| c.replace((seq, stream)));
    LaunchScope { prev }
}

impl Drop for LaunchScope {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT_LAUNCH.with(|c| c.set(prev));
    }
}

/// The `(seq, stream)` of the launch the calling thread is currently
/// working for, or `(0, 0)` outside any [`launch_scope`].
pub fn current_launch() -> (u64, u64) {
    CURRENT_LAUNCH.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// The launch phases the flight recorder distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Submission until the first worker picked up a chunk.
    QueueWait,
    /// PTX → IR translation (cold; cached afterwards).
    Translate,
    /// Warp-width specialization of the IR (cache-miss fill).
    Specialize,
    /// Pre-decoding a specialization into linear bytecode.
    Decode,
    /// Lowering a decoded specialization to native x86-64 (JIT emit,
    /// cache-miss fill under `DPVK_ENGINE=jit`).
    JitEmit,
    /// One worker executing one chunk of the launch's CTAs.
    Execute,
    /// Warp formation inside one chunk, coalesced into a single span.
    Gather,
    /// The launch's last chunk completed and the result became
    /// observable.
    Retire,
    /// Loading a translation/specialization artifact from the
    /// persistent on-disk cache (replaces Translate/Specialize/Decode
    /// on a warm restart).
    PersistLoad,
    /// Writing a freshly compiled artifact to the persistent cache.
    PersistStore,
    /// A background respecialization task compiling a candidate warp
    /// width for the adaptive policy (runs on a pool worker track,
    /// off every launch's critical path).
    Respecialize,
}

impl SpanKind {
    /// Every kind, in pipeline order.
    pub const ALL: [SpanKind; 11] = [
        SpanKind::QueueWait,
        SpanKind::Translate,
        SpanKind::Specialize,
        SpanKind::Decode,
        SpanKind::JitEmit,
        SpanKind::Execute,
        SpanKind::Gather,
        SpanKind::Retire,
        SpanKind::PersistLoad,
        SpanKind::PersistStore,
        SpanKind::Respecialize,
    ];

    /// Stable snake_case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Translate => "translate",
            SpanKind::Specialize => "specialize",
            SpanKind::Decode => "decode",
            SpanKind::JitEmit => "jit_emit",
            SpanKind::Execute => "execute",
            SpanKind::Gather => "gather",
            SpanKind::Retire => "retire",
            SpanKind::PersistLoad => "persist_load",
            SpanKind::PersistStore => "persist_store",
            SpanKind::Respecialize => "respecialize",
        }
    }
}

/// One recorded span on the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Which phase this span covers.
    pub kind: SpanKind,
    /// Kernel the span belongs to.
    pub kernel: String,
    /// Launch sequence number (0 = not attributed to a launch).
    pub seq: u64,
    /// Stream id (0 = direct, unstreamed launch).
    pub stream: u64,
    /// Worker track the span ran on, if it ran on a pool worker.
    pub worker: Option<u32>,
    /// Start, nanoseconds on the [`now_ns`] clock.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instantaneous markers).
    pub dur_ns: u64,
    /// Kind-specific detail: warps executed (execute), gather calls
    /// coalesced (gather), chunk count (queue-wait); 0 otherwise.
    pub detail: u64,
}

/// Capacity of the bounded span store; past it, spans are counted in
/// [`dropped_spans`] instead of stored.
pub const SPAN_CAPACITY: usize = 1 << 16;

#[derive(Default)]
struct TimelineState {
    spans: Vec<Span>,
    dropped: u64,
}

fn state() -> &'static Mutex<TimelineState> {
    static STATE: OnceLock<Mutex<TimelineState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(TimelineState::default()))
}

fn lock_state() -> std::sync::MutexGuard<'static, TimelineState> {
    state().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Record one span. No-op (one relaxed atomic load) when tracing is off.
pub fn record_span(span: Span) {
    if !crate::enabled() {
        return;
    }
    let mut s = lock_state();
    if s.spans.len() < SPAN_CAPACITY {
        s.spans.push(span);
    } else {
        s.dropped += 1;
    }
}

/// Spans discarded because the bounded store was full.
pub fn dropped_spans() -> u64 {
    lock_state().dropped
}

/// All recorded spans, sorted by start time (then seq) so exports are
/// deterministic for a deterministic workload.
pub fn spans() -> Vec<Span> {
    let mut spans = lock_state().spans.clone();
    spans.sort_by_key(|s| (s.start_ns, s.seq, s.kind));
    spans
}

/// Clear all recorded spans (used by `trace::reset`). Worker track ids
/// and the launch-sequence counter keep running: they identify live
/// threads and launches, not recorded data.
pub(crate) fn reset_timeline() {
    let mut s = lock_state();
    s.spans.clear();
    s.dropped = 0;
}

// ---------------------------------------------------------------------------
// Launch records + aggregates
// ---------------------------------------------------------------------------

/// All spans of one launch, grouped by sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchRecord {
    /// Launch sequence number.
    pub seq: u64,
    /// Kernel name.
    pub kernel: String,
    /// Stream id (0 = direct).
    pub stream: u64,
    /// The launch's spans, in start order.
    pub spans: Vec<Span>,
}

/// Group recorded spans into per-launch records, sorted by sequence
/// number. Spans not attributed to a launch (seq 0) are omitted.
pub fn launch_records() -> Vec<LaunchRecord> {
    let mut records: Vec<LaunchRecord> = Vec::new();
    for span in spans() {
        if span.seq == 0 {
            continue;
        }
        match records.iter_mut().find(|r| r.seq == span.seq) {
            Some(r) => r.spans.push(span),
            None => records.push(LaunchRecord {
                seq: span.seq,
                kernel: span.kernel.clone(),
                stream: span.stream,
                spans: vec![span],
            }),
        }
    }
    records.sort_by_key(|r| r.seq);
    records
}

/// Aggregate time per span kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanTotal {
    /// The span kind being totalled.
    pub kind: SpanKind,
    /// Number of spans of this kind.
    pub calls: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
}

/// Per-kind span totals in pipeline order (kinds with no spans included
/// with zero counts, so the shape is stable).
pub fn span_totals() -> Vec<SpanTotal> {
    let mut totals: Vec<SpanTotal> =
        SpanKind::ALL.iter().map(|&kind| SpanTotal { kind, calls: 0, total_ns: 0 }).collect();
    for span in lock_state().spans.iter() {
        let t = &mut totals[span.kind as usize];
        t.calls += 1;
        t.total_ns += span.dur_ns;
    }
    totals
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// Synthetic pid of the per-worker track group in the Chrome export.
const WORKERS_PID: u64 = 1;
/// Synthetic pid of the per-stream track group in the Chrome export.
const STREAMS_PID: u64 = 2;

fn meta_event(j: &mut Json, name: &str, pid: u64, tid: u64, value: &str) {
    j.open_obj(None);
    j.field_str("name", name);
    j.field_str("ph", "M");
    j.field_u64("pid", pid);
    j.field_u64("tid", tid);
    j.open_obj(Some("args"));
    j.field_str("name", value);
    j.close_obj();
    j.close_obj();
}

/// Render the recorded timeline as Chrome trace-event JSON (the format
/// Perfetto and `chrome://tracing` load): complete (`ph:"X"`) events with
/// microsecond timestamps, one track per worker (pid 1) and one per
/// stream (pid 2).
pub fn chrome_trace() -> String {
    let spans = spans();
    let mut j = Json::new();
    j.open_obj(None);
    j.field_str("displayTimeUnit", "ms");
    j.open_arr(Some("traceEvents"));

    meta_event(&mut j, "process_name", WORKERS_PID, 0, "workers");
    meta_event(&mut j, "process_name", STREAMS_PID, 0, "streams");
    let mut workers: Vec<u32> = spans.iter().filter_map(|s| s.worker).collect();
    workers.sort_unstable();
    workers.dedup();
    for w in workers {
        meta_event(&mut j, "thread_name", WORKERS_PID, u64::from(w), &format!("worker {w}"));
    }
    let mut streams: Vec<u64> =
        spans.iter().filter(|s| s.worker.is_none()).map(|s| s.stream).collect();
    streams.sort_unstable();
    streams.dedup();
    for s in streams {
        let name = if s == 0 { "direct".to_string() } else { format!("stream {s}") };
        meta_event(&mut j, "thread_name", STREAMS_PID, s, &name);
    }

    for span in &spans {
        let (pid, tid) = match span.worker {
            Some(w) => (WORKERS_PID, u64::from(w)),
            None => (STREAMS_PID, span.stream),
        };
        j.open_obj(None);
        j.field_str("name", span.kind.name());
        j.field_str("cat", "dpvk");
        j.field_str("ph", "X");
        j.field_f64("ts", span.start_ns as f64 / 1000.0);
        j.field_f64("dur", span.dur_ns as f64 / 1000.0);
        j.field_u64("pid", pid);
        j.field_u64("tid", tid);
        j.open_obj(Some("args"));
        j.field_str("kernel", &span.kernel);
        j.field_u64("seq", span.seq);
        j.field_u64("stream", span.stream);
        j.field_u64("detail", span.detail);
        j.close_obj();
        j.close_obj();
    }

    j.close_arr();
    j.close_obj();
    j.finish()
}

/// Write the Chrome trace to `path`, creating parent directories.
pub fn write_chrome_trace(path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, chrome_trace())
}

/// Default timeline output path: `DPVK_TIMELINE_OUT` if set, else
/// `target/dpvk-timeline.json`.
pub fn default_timeline_path() -> PathBuf {
    match std::env::var_os("DPVK_TIMELINE_OUT") {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from("target").join("dpvk-timeline.json"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, seq: u64, start: u64, dur: u64, worker: Option<u32>) -> Span {
        Span {
            kind,
            kernel: "k".to_string(),
            seq,
            stream: 0,
            worker,
            start_ns: start,
            dur_ns: dur,
            detail: 0,
        }
    }

    #[test]
    fn records_group_by_seq_and_totals_aggregate() {
        let _g = crate::test_serial();
        crate::enable();
        crate::reset();
        record_span(span(SpanKind::QueueWait, 1, 0, 10, None));
        record_span(span(SpanKind::Execute, 1, 10, 100, Some(0)));
        record_span(span(SpanKind::Execute, 2, 20, 50, Some(1)));
        record_span(span(SpanKind::Gather, 1, 10, 30, Some(0)));
        let records = launch_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[0].spans.len(), 3);
        assert_eq!(records[1].spans.len(), 1);
        let totals = span_totals();
        let exec = totals.iter().find(|t| t.kind == SpanKind::Execute).unwrap();
        assert_eq!(exec.calls, 2);
        assert_eq!(exec.total_ns, 150);
        crate::disable();
        crate::reset();
    }

    #[test]
    fn chrome_trace_has_tracks_and_events() {
        let _g = crate::test_serial();
        crate::enable();
        crate::reset();
        record_span(span(SpanKind::Execute, 1, 1500, 2500, Some(3)));
        record_span(span(SpanKind::QueueWait, 1, 0, 1500, None));
        let json = chrome_trace();
        assert!(json.contains("\"traceEvents\":["), "{json}");
        assert!(json.contains("\"name\":\"worker 3\""), "{json}");
        assert!(json.contains("\"name\":\"direct\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        crate::disable();
        crate::reset();
    }

    #[test]
    fn disabled_recorder_stores_nothing() {
        let _g = crate::test_serial();
        crate::disable();
        crate::reset();
        record_span(span(SpanKind::Execute, 1, 0, 1, Some(0)));
        assert!(spans().is_empty());
        assert_eq!(dropped_spans(), 0);
    }

    #[test]
    fn launch_scope_nests_and_restores() {
        assert_eq!(current_launch(), (0, 0));
        {
            let _outer = launch_scope(7, 2);
            assert_eq!(current_launch(), (7, 2));
            {
                let _inner = launch_scope(8, 0);
                assert_eq!(current_launch(), (8, 0));
            }
            assert_eq!(current_launch(), (7, 2));
        }
        assert_eq!(current_launch(), (0, 0));
    }
}
