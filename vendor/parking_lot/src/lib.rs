//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! optional `parking_lot` dependency of `dpvk-core` resolves to this
//! path crate: the subset of the `parking_lot` 0.12 API the workspace
//! uses (an unpoisonable [`Mutex`] whose `lock` returns the guard
//! directly), implemented over `std::sync`. Builds with network access
//! may swap the real crate in without touching any code.

#![warn(missing_docs)]

use std::fmt;

/// Guard returned by [`Mutex::lock`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A mutual-exclusion lock with the `parking_lot` calling convention:
/// `lock()` returns the guard directly and poisoning does not exist (a
/// panic while holding the lock leaves the data accessible).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard returned by [`RwLock::read`]; releases on drop.
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Guard returned by [`RwLock::write`]; releases on drop.
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with the `parking_lot` calling convention:
/// `read()`/`write()` return guards directly and poisoning does not
/// exist.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let c = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = c.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
