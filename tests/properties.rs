//! Property-style tests: randomly generated kernels must compute the same
//! results under every execution policy, and the front end must
//! round-trip. Inputs come from a seeded deterministic generator (no
//! external property-testing dependency), so every failure reproduces
//! exactly.

use dpvk::core::{Device, ExecConfig, ParamValue};
use dpvk::ptx;
use dpvk::vm::MachineModel;
use dpvk::workloads::Prng;

/// One random straight-line integer instruction over registers
/// `%v0..%v{NREGS}`.
#[derive(Debug, Clone)]
enum Op {
    Bin { mnemonic: &'static str, dst: usize, a: usize, b: usize },
    BinImm { mnemonic: &'static str, dst: usize, a: usize, imm: u32 },
    Shift { mnemonic: &'static str, dst: usize, a: usize, amount: u32 },
    SelpGe { dst: usize, a: usize, b: usize, x: usize, y: usize },
}

const NREGS: usize = 6;

fn random_op(rng: &mut Prng) -> Op {
    fn reg(rng: &mut Prng) -> usize {
        rng.gen_range_u32(NREGS as u32) as usize
    }
    // Weights mirror the original distribution: 4 binary : 2 immediate :
    // 2 shift : 1 select.
    match rng.gen_range_u32(9) {
        0..=3 => {
            const MNEMONICS: [&str; 10] = [
                "add.u32",
                "sub.u32",
                "mul.lo.u32",
                "and.b32",
                "or.b32",
                "xor.b32",
                "min.u32",
                "max.u32",
                "min.s32",
                "max.s32",
            ];
            let m = MNEMONICS[rng.gen_range_u32(MNEMONICS.len() as u32) as usize];
            Op::Bin { mnemonic: m, dst: reg(rng), a: reg(rng), b: reg(rng) }
        }
        4 | 5 => {
            const MNEMONICS: [&str; 3] = ["add.u32", "mul.lo.u32", "xor.b32"];
            let m = MNEMONICS[rng.gen_range_u32(MNEMONICS.len() as u32) as usize];
            Op::BinImm { mnemonic: m, dst: reg(rng), a: reg(rng), imm: rng.next_u32() }
        }
        6 | 7 => {
            const MNEMONICS: [&str; 3] = ["shl.u32", "shr.u32", "shr.s32"];
            let m = MNEMONICS[rng.gen_range_u32(MNEMONICS.len() as u32) as usize];
            Op::Shift { mnemonic: m, dst: reg(rng), a: reg(rng), amount: rng.gen_range_u32(32) }
        }
        _ => Op::SelpGe { dst: reg(rng), a: reg(rng), b: reg(rng), x: reg(rng), y: reg(rng) },
    }
}

fn random_ops(rng: &mut Prng, min: usize, max: usize) -> Vec<Op> {
    let n = min + rng.gen_range_u32((max - min) as u32) as usize;
    (0..n).map(|_| random_op(rng)).collect()
}

fn kernel_body_fragment(ops: &[Op]) -> String {
    let mut body = String::new();
    for op in ops {
        match op {
            Op::Bin { mnemonic, dst, a, b } => {
                body.push_str(&format!("  {mnemonic} %v{dst}, %v{a}, %v{b};\n"));
            }
            Op::BinImm { mnemonic, dst, a, imm } => {
                body.push_str(&format!("  {mnemonic} %v{dst}, %v{a}, {imm};\n"));
            }
            Op::Shift { mnemonic, dst, a, amount } => {
                body.push_str(&format!("  {mnemonic} %v{dst}, %v{a}, {amount};\n"));
            }
            Op::SelpGe { dst, a, b, x, y } => {
                body.push_str(&format!("  setp.ge.u32 %p0, %v{a}, %v{b};\n"));
                body.push_str(&format!("  selp.u32 %v{dst}, %v{x}, %v{y}, %p0;\n"));
            }
        }
    }
    body
}

/// Render the ops as a kernel: seed registers from tid, apply ops, store
/// the xor of all registers.
fn kernel_source(ops: &[Op]) -> String {
    let body = kernel_body_fragment(ops);
    let mut seed = String::new();
    for i in 0..NREGS {
        seed.push_str(&format!("  mad.lo.u32 %v{i}, %r0, {}, {};\n", 2 * i + 1, 7 * i + 3));
    }
    let mut fold = String::new();
    for i in 1..NREGS {
        fold.push_str(&format!("  xor.b32 %v0, %v0, %v{i};\n"));
    }
    format!(
        r#"
.kernel prop (.param .u64 out) {{
  .reg .u32 %r<4>;
  .reg .u32 %v<{NREGS}>;
  .reg .u64 %rd<3>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
{seed}{body}{fold}  shl.u32 %r1, %r0, 2;
  cvt.u64.u32 %rd0, %r1;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.u32 [%rd1], %v0;
  ret;
}}
"#
    )
}

fn run(src: &str, config: &ExecConfig, n: u32) -> Vec<u32> {
    let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 20);
    dev.register_source(src).unwrap();
    let po = dev.malloc(n as usize * 4).unwrap();
    dev.launch("prop", [n.div_ceil(16), 1, 1], [16, 1, 1], &[ParamValue::Ptr(po)], config).unwrap();
    dev.copy_u32_dtoh(po, n as usize).unwrap()
}

/// Vectorized execution of random straight-line kernels matches the
/// scalar baseline exactly.
#[test]
fn vectorization_preserves_straightline_semantics() {
    let mut rng = Prng::new(0x5717_a117);
    for case in 0..24 {
        let ops = random_ops(&mut rng, 1, 24);
        let src = kernel_source(&ops);
        let scalar = run(&src, &ExecConfig::baseline(), 32);
        let vec4 = run(&src, &ExecConfig::dynamic(4), 32);
        let tie = run(&src, &ExecConfig::static_tie(4), 32);
        assert_eq!(scalar, vec4, "case {case}: dynamic w4 diverged\n{src}");
        assert_eq!(scalar, tie, "case {case}: static_tie w4 diverged\n{src}");
    }
}

/// Adding a data-dependent branch over half the ops preserves semantics
/// under yield-on-diverge.
#[test]
fn vectorization_preserves_divergent_semantics() {
    let mut rng = Prng::new(0xd1ae_05e7);
    for case in 0..24 {
        let ops = random_ops(&mut rng, 2, 16);
        let bit = rng.gen_range_u32(4);
        // Wrap the second half of the ops in `if (tid >> bit) & 1`.
        let half = ops.len() / 2;
        let prefix = kernel_body_fragment(&ops[..half]);
        let suffix = kernel_body_fragment(&ops[half..]);
        let mut seed = String::new();
        for i in 0..NREGS {
            seed.push_str(&format!("  mad.lo.u32 %v{i}, %r0, {}, {};\n", 2 * i + 1, 7 * i + 3));
        }
        let mut fold = String::new();
        for i in 1..NREGS {
            fold.push_str(&format!("  xor.b32 %v0, %v0, %v{i};\n"));
        }
        let src = format!(
            r#"
.kernel prop (.param .u64 out) {{
  .reg .u32 %r<4>;
  .reg .u32 %v<{NREGS}>;
  .reg .u64 %rd<3>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
{seed}{prefix}  shr.u32 %r2, %r0, {bit};
  and.b32 %r2, %r2, 1;
  setp.eq.u32 %p1, %r2, 0;
  @%p1 bra merge;
{suffix}merge:
{fold}  shl.u32 %r1, %r0, 2;
  cvt.u64.u32 %rd0, %r1;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.u32 [%rd1], %v0;
  ret;
}}
"#
        );
        let scalar = run(&src, &ExecConfig::baseline(), 32);
        let vec4 = run(&src, &ExecConfig::dynamic(4), 32);
        let vec2 = run(&src, &ExecConfig::dynamic(2), 32);
        assert_eq!(scalar, vec4, "case {case}: dynamic w4 diverged\n{src}");
        assert_eq!(scalar, vec2, "case {case}: dynamic w2 diverged\n{src}");
    }
}

/// The printer's output parses back to an equivalent kernel.
#[test]
fn printer_round_trips() {
    let mut rng = Prng::new(0x0707_1e55);
    for case in 0..24 {
        let ops = random_ops(&mut rng, 1, 16);
        let src = kernel_source(&ops);
        let k1 = ptx::parse_kernel(&src).unwrap();
        let text = ptx::print_kernel(&k1);
        let k2 = ptx::parse_kernel(&text).unwrap();
        assert_eq!(k1.blocks.len(), k2.blocks.len(), "case {case}");
        for (b1, b2) in k1.blocks.iter().zip(&k2.blocks) {
            assert_eq!(b1.instructions, b2.instructions, "case {case}");
        }
    }
}
