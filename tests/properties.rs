//! Property-style tests: randomly generated kernels must compute the same
//! results under every execution policy, and the front end must
//! round-trip. Inputs come from a seeded deterministic generator (no
//! external property-testing dependency), so every failure reproduces
//! exactly.

use dpvk::core::{Device, ExecConfig, ParamValue};
use dpvk::ptx;
use dpvk::vm::MachineModel;
use dpvk::workloads::Prng;

mod common;

/// One random straight-line integer instruction over registers
/// `%v0..%v{NREGS}`.
#[derive(Debug, Clone)]
enum Op {
    Bin { mnemonic: &'static str, dst: usize, a: usize, b: usize },
    BinImm { mnemonic: &'static str, dst: usize, a: usize, imm: u32 },
    Shift { mnemonic: &'static str, dst: usize, a: usize, amount: u32 },
    SelpGe { dst: usize, a: usize, b: usize, x: usize, y: usize },
}

const NREGS: usize = 6;

fn random_op(rng: &mut Prng) -> Op {
    fn reg(rng: &mut Prng) -> usize {
        rng.gen_range_u32(NREGS as u32) as usize
    }
    // Weights mirror the original distribution: 4 binary : 2 immediate :
    // 2 shift : 1 select.
    match rng.gen_range_u32(9) {
        0..=3 => {
            const MNEMONICS: [&str; 10] = [
                "add.u32",
                "sub.u32",
                "mul.lo.u32",
                "and.b32",
                "or.b32",
                "xor.b32",
                "min.u32",
                "max.u32",
                "min.s32",
                "max.s32",
            ];
            let m = MNEMONICS[rng.gen_range_u32(MNEMONICS.len() as u32) as usize];
            Op::Bin { mnemonic: m, dst: reg(rng), a: reg(rng), b: reg(rng) }
        }
        4 | 5 => {
            const MNEMONICS: [&str; 3] = ["add.u32", "mul.lo.u32", "xor.b32"];
            let m = MNEMONICS[rng.gen_range_u32(MNEMONICS.len() as u32) as usize];
            Op::BinImm { mnemonic: m, dst: reg(rng), a: reg(rng), imm: rng.next_u32() }
        }
        6 | 7 => {
            const MNEMONICS: [&str; 3] = ["shl.u32", "shr.u32", "shr.s32"];
            let m = MNEMONICS[rng.gen_range_u32(MNEMONICS.len() as u32) as usize];
            Op::Shift { mnemonic: m, dst: reg(rng), a: reg(rng), amount: rng.gen_range_u32(32) }
        }
        _ => Op::SelpGe { dst: reg(rng), a: reg(rng), b: reg(rng), x: reg(rng), y: reg(rng) },
    }
}

fn random_ops(rng: &mut Prng, min: usize, max: usize) -> Vec<Op> {
    let n = min + rng.gen_range_u32((max - min) as u32) as usize;
    (0..n).map(|_| random_op(rng)).collect()
}

fn kernel_body_fragment(ops: &[Op]) -> String {
    let mut body = String::new();
    for op in ops {
        match op {
            Op::Bin { mnemonic, dst, a, b } => {
                body.push_str(&format!("  {mnemonic} %v{dst}, %v{a}, %v{b};\n"));
            }
            Op::BinImm { mnemonic, dst, a, imm } => {
                body.push_str(&format!("  {mnemonic} %v{dst}, %v{a}, {imm};\n"));
            }
            Op::Shift { mnemonic, dst, a, amount } => {
                body.push_str(&format!("  {mnemonic} %v{dst}, %v{a}, {amount};\n"));
            }
            Op::SelpGe { dst, a, b, x, y } => {
                body.push_str(&format!("  setp.ge.u32 %p0, %v{a}, %v{b};\n"));
                body.push_str(&format!("  selp.u32 %v{dst}, %v{x}, %v{y}, %p0;\n"));
            }
        }
    }
    body
}

/// Render the ops as a kernel: seed registers from tid, apply ops, store
/// the xor of all registers.
fn kernel_source(ops: &[Op]) -> String {
    let body = kernel_body_fragment(ops);
    let mut seed = String::new();
    for i in 0..NREGS {
        seed.push_str(&format!("  mad.lo.u32 %v{i}, %r0, {}, {};\n", 2 * i + 1, 7 * i + 3));
    }
    let mut fold = String::new();
    for i in 1..NREGS {
        fold.push_str(&format!("  xor.b32 %v0, %v0, %v{i};\n"));
    }
    format!(
        r#"
.kernel prop (.param .u64 out) {{
  .reg .u32 %r<4>;
  .reg .u32 %v<{NREGS}>;
  .reg .u64 %rd<3>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
{seed}{body}{fold}  shl.u32 %r1, %r0, 2;
  cvt.u64.u32 %rd0, %r1;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.u32 [%rd1], %v0;
  ret;
}}
"#
    )
}

fn run(src: &str, config: &ExecConfig, n: u32) -> Vec<u32> {
    let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 20);
    dev.register_source(src).unwrap();
    let po = dev.malloc(n as usize * 4).unwrap();
    dev.launch("prop", [n.div_ceil(16), 1, 1], [16, 1, 1], &[ParamValue::Ptr(po)], config).unwrap();
    dev.copy_u32_dtoh(po, n as usize).unwrap()
}

/// Vectorized execution of random straight-line kernels matches the
/// scalar baseline exactly.
#[test]
fn vectorization_preserves_straightline_semantics() {
    let mut rng = Prng::new(0x5717_a117);
    for case in 0..24 {
        let ops = random_ops(&mut rng, 1, 24);
        let src = kernel_source(&ops);
        let scalar = run(&src, &ExecConfig::baseline(), 32);
        let vec4 = run(&src, &ExecConfig::dynamic(4), 32);
        let tie = run(&src, &ExecConfig::static_tie(4), 32);
        assert_eq!(scalar, vec4, "case {case}: dynamic w4 diverged\n{src}");
        assert_eq!(scalar, tie, "case {case}: static_tie w4 diverged\n{src}");
    }
}

/// Render random ops as a kernel with a data-dependent branch over the
/// second half (`if (tid >> bit) & 1`), exercising yield-on-diverge.
fn divergent_kernel_source(rng: &mut Prng) -> String {
    let ops = random_ops(rng, 2, 16);
    let bit = rng.gen_range_u32(4);
    let half = ops.len() / 2;
    let prefix = kernel_body_fragment(&ops[..half]);
    let suffix = kernel_body_fragment(&ops[half..]);
    let mut seed = String::new();
    for i in 0..NREGS {
        seed.push_str(&format!("  mad.lo.u32 %v{i}, %r0, {}, {};\n", 2 * i + 1, 7 * i + 3));
    }
    let mut fold = String::new();
    for i in 1..NREGS {
        fold.push_str(&format!("  xor.b32 %v0, %v0, %v{i};\n"));
    }
    format!(
        r#"
.kernel prop (.param .u64 out) {{
  .reg .u32 %r<4>;
  .reg .u32 %v<{NREGS}>;
  .reg .u64 %rd<3>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
{seed}{prefix}  shr.u32 %r2, %r0, {bit};
  and.b32 %r2, %r2, 1;
  setp.eq.u32 %p1, %r2, 0;
  @%p1 bra merge;
{suffix}merge:
{fold}  shl.u32 %r1, %r0, 2;
  cvt.u64.u32 %rd0, %r1;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.u32 [%rd1], %v0;
  ret;
}}
"#
    )
}

/// Adding a data-dependent branch over half the ops preserves semantics
/// under yield-on-diverge.
#[test]
fn vectorization_preserves_divergent_semantics() {
    let mut rng = Prng::new(0xd1ae_05e7);
    for case in 0..24 {
        let src = divergent_kernel_source(&mut rng);
        let scalar = run(&src, &ExecConfig::baseline(), 32);
        let vec4 = run(&src, &ExecConfig::dynamic(4), 32);
        let vec2 = run(&src, &ExecConfig::dynamic(2), 32);
        assert_eq!(scalar, vec4, "case {case}: dynamic w4 diverged\n{src}");
        assert_eq!(scalar, vec2, "case {case}: dynamic w2 diverged\n{src}");
    }
}

// ---------------------------------------------------------------------------
// Golden launch statistics
// ---------------------------------------------------------------------------
//
// The host-side fast path (flat register frames, per-worker dispatch
// tables, single-pass warp gathering) must not move a single modeled
// counter: `LaunchStats` — cycles split by phase, instruction/flop/memory
// counts, warp histogram, scan-driven manager charges — is folded into a
// digest per configuration and compared against values recorded before
// the fast path landed. Any change to modeled results shows up as a
// digest mismatch. Re-record with `DPVK_BLESS=1 cargo test -q
// golden_launch_stats -- --nocapture` only when a modeled-semantics
// change is intended.

use dpvk::core::LaunchStats;

use crate::common::digest_stats;

fn run_stats(src: &str, config: &ExecConfig, n: u32) -> LaunchStats {
    let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 20);
    dev.register_source(src).unwrap();
    let po = dev.malloc(n as usize * 4).unwrap();
    dev.launch("prop", [n.div_ceil(16), 1, 1], [16, 1, 1], &[ParamValue::Ptr(po)], config).unwrap()
}

/// A fixed barrier-heavy kernel so the sweep also covers barrier pools
/// and warp re-formation after a release (renamed `prop` to share the
/// launch helper; output ignored, only the stats digest matters).
const BARRIER_PROP: &str = r#"
.kernel prop (.param .u64 out) {
  .shared .u32 tile[16];
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, %tid.x;
  cvt.u64.u32 %rd1, %r1;
  shl.u64 %rd2, %rd1, 2;
  mov.u64 %rd3, tile;
  add.u64 %rd3, %rd3, %rd2;
  st.shared.u32 [%rd3], %r1;
  mov.u32 %r2, 8;
loop:
  bar.sync 0;
  setp.ge.u32 %p1, %r1, %r2;
  @%p1 bra skip;
  add.u32 %r3, %r1, %r2;
  cvt.u64.u32 %rd1, %r3;
  shl.u64 %rd1, %rd1, 2;
  mov.u64 %rd2, tile;
  add.u64 %rd2, %rd2, %rd1;
  ld.shared.u32 %r4, [%rd2];
  ld.shared.u32 %r5, [%rd3];
  add.u32 %r5, %r5, %r4;
  st.shared.u32 [%rd3], %r5;
skip:
  shr.u32 %r2, %r2, 1;
  setp.gt.u32 %p1, %r2, 0;
  @%p1 bra loop;
  mad.lo.u32 %r6, %ctaid.x, %ntid.x, %r1;
  cvt.u64.u32 %rd1, %r6;
  shl.u64 %rd1, %rd1, 2;
  ld.param.u64 %rd2, [out];
  add.u64 %rd2, %rd2, %rd1;
  ld.shared.u32 %r7, [%rd3];
  st.global.u32 [%rd2], %r7;
  ret;
}
"#;

/// Modeled results are bit-identical across the host fast path: every
/// `LaunchStats` counter (and the warp histogram) matches the values
/// recorded before the flat-frame/lock-free-dispatch overhaul, across
/// formation policies, warp widths 1/2/4/8 and worker counts 1/2/4.
#[test]
fn golden_launch_stats() {
    let mut rng = Prng::new(0x90_1de5);
    let mut sources: Vec<String> =
        (0..2).map(|_| kernel_source(&random_ops(&mut rng, 4, 20))).collect();
    sources.push(BARRIER_PROP.to_string());

    let configs: Vec<(String, ExecConfig)> = {
        let mut v = vec![("baseline".to_string(), ExecConfig::baseline())];
        for w in [1u32, 2, 4, 8] {
            v.push((format!("dynamic_w{w}"), ExecConfig::dynamic(w)));
        }
        for w in [2u32, 4, 8] {
            v.push((format!("static_w{w}"), ExecConfig::static_tie(w)));
        }
        v
    };

    // (config label, workers) -> digest over all kernels. Recorded before
    // the host fast path landed (DPVK_BLESS output, seed 0x901de5).
    const GOLDEN: [(&str, usize, u64); 24] = [
        ("baseline", 1, 0x77369bb26790127f),
        ("baseline", 2, 0x77369bb26790127f),
        ("baseline", 4, 0x77369bb26790127f),
        ("dynamic_w1", 1, 0x154209b860f0789b),
        ("dynamic_w1", 2, 0x154209b860f0789b),
        ("dynamic_w1", 4, 0x154209b860f0789b),
        ("dynamic_w2", 1, 0x7938d8dfd05330f2),
        ("dynamic_w2", 2, 0x7938d8dfd05330f2),
        ("dynamic_w2", 4, 0x7938d8dfd05330f2),
        ("dynamic_w4", 1, 0x2fa4a38a69ee7488),
        ("dynamic_w4", 2, 0x2fa4a38a69ee7488),
        ("dynamic_w4", 4, 0x2fa4a38a69ee7488),
        ("dynamic_w8", 1, 0x539e9fdfe5645764),
        ("dynamic_w8", 2, 0x539e9fdfe5645764),
        ("dynamic_w8", 4, 0x539e9fdfe5645764),
        ("static_w2", 1, 0xeecc63d870cffed6),
        ("static_w2", 2, 0xeecc63d870cffed6),
        ("static_w2", 4, 0xeecc63d870cffed6),
        ("static_w4", 1, 0x093cf51be6782528),
        ("static_w4", 2, 0x093cf51be6782528),
        ("static_w4", 4, 0x093cf51be6782528),
        ("static_w8", 1, 0xc33c9f166144c0a0),
        ("static_w8", 2, 0xc33c9f166144c0a0),
        ("static_w8", 4, 0xc33c9f166144c0a0),
    ];

    let bless = std::env::var("DPVK_BLESS").is_ok();
    let mut failures = Vec::new();
    let mut blessed = Vec::new();
    for (label, config) in &configs {
        for workers in [1usize, 2, 4] {
            // Modeled results are also engine-invariant: every guest
            // engine (tree-walk, bytecode, native JIT) must hit the same
            // golden digest, so the whole sweep runs on all three.
            for engine in [Engine::Bytecode, Engine::Tree, Engine::Jit] {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for src in &sources {
                    let stats =
                        run_stats(src, &config.with_workers(workers).with_engine(engine), 64);
                    digest_stats(&mut h, &stats);
                }
                if bless {
                    if engine == Engine::Bytecode {
                        blessed.push(format!("(\"{label}\", {workers}, {h:#018x}),"));
                    }
                    continue;
                }
                let expected = GOLDEN
                    .iter()
                    .find(|(l, w, _)| *l == label && *w == workers)
                    .map(|(_, _, d)| *d)
                    .unwrap_or_else(|| panic!("no golden entry for ({label}, {workers})"));
                if h != expected {
                    failures.push(format!(
                        "({label}, workers={workers}, {}): digest {h:#018x} != golden {expected:#018x}",
                        engine.label(),
                    ));
                }
            }
        }
    }
    if bless {
        println!("    const GOLDEN: [(&str, usize, u64); 24] = [");
        for line in &blessed {
            println!("        {line}");
        }
        println!("    ];");
        return;
    }
    assert!(failures.is_empty(), "modeled results moved:\n{}", failures.join("\n"));
}

// ---------------------------------------------------------------------------
// Differential engine fuzzing
// ---------------------------------------------------------------------------

use dpvk::core::Engine;

/// All three guest engines must be pairwise observationally identical
/// at every warp width: random kernels — straight-line, divergent, and
/// the fixed barrier-heavy one — produce the same memory image and
/// bit-identical `LaunchStats` (modeled cycles included) under the
/// tree-walk oracle, the pre-decoded bytecode engine, and the native
/// JIT tier, across formation policies and widths 1/2/4/8. Every
/// engine is diffed against bytecode, which gives all three pairings
/// by transitivity — and every config's memory image is diffed against
/// the scalar baseline's, so width itself is proven not to change what
/// is computed (the invariant the adaptive width policy relies on to
/// switch widths between launches). Seeded SplitMix64 generator, so
/// every failure reproduces exactly.
#[test]
fn engines_are_pairwise_identical() {
    let mut rng = Prng::new(0x00b1_7ec0_de0a_c1e5_u64);
    let mut sources: Vec<String> = Vec::new();
    for _ in 0..8 {
        sources.push(kernel_source(&random_ops(&mut rng, 1, 24)));
        sources.push(divergent_kernel_source(&mut rng));
    }
    sources.push(BARRIER_PROP.to_string());

    let configs = [
        ExecConfig::baseline(),
        ExecConfig::dynamic(1),
        ExecConfig::dynamic(2),
        ExecConfig::dynamic(4),
        ExecConfig::dynamic(8),
        ExecConfig::static_tie(2),
        ExecConfig::static_tie(4),
        ExecConfig::static_tie(8),
    ];
    for (case, src) in sources.iter().enumerate() {
        // Memory image of the first (scalar baseline) config: the
        // cross-width/cross-policy reference.
        let mut reference: Option<Vec<u32>> = None;
        for config in &configs {
            let byte = config.with_engine(Engine::Bytecode);
            let out_byte = run(src, &byte, 32);
            let stats_byte = run_stats(src, &byte, 64);
            match &reference {
                Some(r) => assert_eq!(
                    &out_byte, r,
                    "case {case}: width/policy changed the memory image\n{src}"
                ),
                None => reference = Some(out_byte.clone()),
            }
            for engine in [Engine::Tree, Engine::Jit] {
                let other = config.with_engine(engine);
                let out = run(src, &other, 32);
                assert_eq!(
                    out,
                    out_byte,
                    "case {case}: {} memory image diverged from bytecode\n{src}",
                    engine.label()
                );
                let stats = run_stats(src, &other, 64);
                assert_eq!(
                    stats,
                    stats_byte,
                    "case {case}: {} launch stats diverged from bytecode\n{src}",
                    engine.label()
                );
            }
        }
    }
}

/// The printer's output parses back to an equivalent kernel.
#[test]
fn printer_round_trips() {
    let mut rng = Prng::new(0x0707_1e55);
    for case in 0..24 {
        let ops = random_ops(&mut rng, 1, 16);
        let src = kernel_source(&ops);
        let k1 = ptx::parse_kernel(&src).unwrap();
        let text = ptx::print_kernel(&k1);
        let k2 = ptx::parse_kernel(&text).unwrap();
        assert_eq!(k1.blocks.len(), k2.blocks.len(), "case {case}");
        for (b1, b2) in k1.blocks.iter().zip(&k2.blocks) {
            assert_eq!(b1.instructions, b2.instructions, "case {case}");
        }
    }
}
