//! Allocator stress: the size-classed device heap under sustained churn.
//!
//! Two properties the rest of the system leans on:
//!
//! * **Bounded heap.** With a bounded live set, tens of thousands of
//!   alloc/free cycles must not grow the heap — reuse and eviction have
//!   to absorb the churn, where the old bump-only allocator would have
//!   exhausted the arena after a few hundred rounds.
//! * **No aliasing, no stale bytes.** A live block's contents never
//!   change under someone else's alloc/free traffic, and every block is
//!   handed out zeroed regardless of allocation history. Together these
//!   make kernel outputs — and therefore golden digests — independent
//!   of allocator state, which the cross-engine digest test pins.

mod common;

use dpvk::core::{Device, DevicePtr, Engine, ExecConfig, ParamValue};
use dpvk::vm::MachineModel;

const HEAP: usize = 1 << 20;

/// SplitMix64: the repo's standard seedable generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Deterministic per-block byte pattern, distinct per seed so that any
/// aliasing between two live blocks shows up as a mismatch.
fn pattern(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        out.extend_from_slice(&rng.next().to_le_bytes());
    }
    out.truncate(len);
    out
}

#[test]
fn churn_stays_bounded_and_never_aliases() {
    let dev = Device::new(MachineModel::sandybridge_sse(), HEAP);
    let mut rng = SplitMix64(0x5EED_CAFE);
    // (ptr, requested len, pattern seed) for every live block.
    let mut live: Vec<(DevicePtr, usize, u64)> = Vec::new();

    for cycle in 0..12_000u32 {
        let r = rng.next();
        let must_free = live.len() >= 32;
        let want_free = must_free || (!live.is_empty() && r & 3 == 0);
        if want_free {
            let idx = (r >> 8) as usize % live.len();
            let (ptr, len, seed) = live.swap_remove(idx);
            // The block's contents must have survived all the traffic
            // since it was written.
            let mut got = vec![0u8; len];
            dev.memcpy_dtoh(&mut got, ptr).unwrap();
            assert_eq!(got, pattern(seed, len), "cycle {cycle}: live block clobbered");
            dev.free(ptr).unwrap();
        } else {
            let len = 1 + (r >> 16) as usize % 4096;
            let ptr = dev.malloc(len).unwrap();
            // Zero on reuse: initial contents never depend on history.
            let mut got = vec![0u8; len];
            dev.memcpy_dtoh(&mut got, ptr).unwrap();
            assert!(
                got.iter().all(|&b| b == 0),
                "cycle {cycle}: block handed out with stale bytes"
            );
            let seed = r ^ 0xA11A_5EED;
            dev.memcpy_htod(ptr, &pattern(seed, len)).unwrap();
            live.push((ptr, len, seed));
        }
    }

    let stats = dev.memory_stats();
    // ≤32 live blocks of ≤4 KiB round to ≤8 KiB classes: the heap must
    // stay far below capacity no matter how many cycles ran.
    assert!(stats.high_water <= 32 * 8192, "heap not bounded by the live set: {stats:?}");
    assert!(stats.reuse_bytes > stats.fresh_bytes, "churn barely exercised reuse: {stats:?}");

    // Drain: every surviving block still verifies, and the heap returns
    // to empty.
    for (ptr, len, seed) in live.drain(..) {
        let mut got = vec![0u8; len];
        dev.memcpy_dtoh(&mut got, ptr).unwrap();
        assert_eq!(got, pattern(seed, len), "drain: live block clobbered");
        dev.free(ptr).unwrap();
    }
    assert_eq!(dev.heap_used(), 0);
    assert_eq!(dev.memory_stats().live_blocks, 0);
}

/// In-place `data[i] *= 3` over `n` u32 elements.
const TRIPLE: &str = r#"
.kernel triple (.param .u64 data, .param .u32 n) {
  .reg .u32 %r<3>;
  .reg .u64 %rd<2>;
  .reg .pred %p<1>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r2, [%rd1];
  mul.lo.u32 %r2, %r2, 3;
  st.global.u32 [%rd1], %r2;
done:
  ret;
}
"#;

/// Run a fixed launch schedule interleaved with allocator churn and
/// digest every kernel output. The digest depends only on the inputs —
/// never on which recycled block a launch happened to land in.
fn churn_digest(engine: Engine) -> u64 {
    let dev = Device::new(MachineModel::sandybridge_sse(), HEAP);
    dev.register_source(TRIPLE).unwrap();
    let config = ExecConfig::dynamic(4).with_engine(engine);
    let mut rng = SplitMix64(0xD16E_57ED);
    let mut h = 0xcbf2_9ce4_8422_2325u64;

    for _round in 0..24 {
        // Churn between launches so each round's buffer lands on a
        // different mix of virgin, recycled and reserve-carved memory.
        let junk: Vec<_> =
            (0..6).map(|_| dev.alloc(1 + (rng.next() >> 16) as usize % 8192).unwrap()).collect();
        drop(junk);

        let n = 64 + (rng.next() % 192) as u32;
        let input: Vec<u32> = (0..n).map(|_| rng.next() as u32).collect();
        let buf = dev.alloc(n as usize * 4).unwrap();
        dev.copy_u32_htod(buf.ptr(), &input).unwrap();
        dev.launch(
            "triple",
            [n.div_ceil(32), 1, 1],
            [32, 1, 1],
            &[ParamValue::Ptr(buf.ptr()), ParamValue::U32(n)],
            &config,
        )
        .unwrap();
        let out = dev.copy_u32_dtoh(buf.ptr(), n as usize).unwrap();
        for (i, (&got, &fed)) in out.iter().zip(&input).enumerate() {
            assert_eq!(got, fed.wrapping_mul(3), "element {i} wrong under {engine:?}");
        }
        let bytes: Vec<u8> = out.iter().flat_map(|v| v.to_le_bytes()).collect();
        common::fold(&mut h, common::digest_bytes(&bytes));
    }
    h
}

#[test]
fn golden_digests_are_engine_independent_under_churn() {
    let tree = churn_digest(Engine::Tree);
    let bytecode = churn_digest(Engine::Bytecode);
    let jit = churn_digest(Engine::Jit);
    assert_eq!(tree, bytecode, "tree vs bytecode digests diverged");
    assert_eq!(bytecode, jit, "bytecode vs jit digests diverged");
}
