//! Integration tests of the dpvk-trace observability layer: a
//! known-divergent kernel must produce the expected yield-reason counts,
//! a non-trivial warp-occupancy histogram, and properly nested compile
//! phase timers — and with tracing disabled, no events at all and
//! bit-identical execution statistics.

use std::sync::Mutex;

use dpvk::core::{Device, ExecConfig, LaunchStats, ParamValue};
use dpvk::trace::{self, EventReport, TraceReport};
use dpvk::vm::MachineModel;

/// The tracer is process-global; tests in this binary serialize on this
/// lock and reset state around themselves.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Collatz step counts: threads iterate data-dependent trip counts, so
/// warps diverge heavily (branch yields) and drain at different times
/// (partial-width warps in the occupancy histogram).
const DIVERGENT: &str = r#"
.kernel collatz_steps (.param .u64 seeds, .param .u64 out, .param .u32 n) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<4>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  shl.u32 %r2, %r0, 2;
  cvt.u64.u32 %rd0, %r2;
  ld.param.u64 %rd1, [seeds];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r3, [%rd1];
  mov.u32 %r4, 0;
loop:
  setp.le.u32 %p1, %r3, 1;
  @%p1 bra store;
  and.b32 %r5, %r3, 1;
  setp.eq.u32 %p2, %r5, 0;
  @%p2 bra even;
  mad.lo.u32 %r3, %r3, 3, 1;
  bra next;
even:
  shr.u32 %r3, %r3, 1;
next:
  add.u32 %r4, %r4, 1;
  bra loop;
store:
  ld.param.u64 %rd2, [out];
  add.u64 %rd2, %rd2, %rd0;
  st.global.u32 [%rd2], %r4;
done:
  ret;
}
"#;

/// A barrier kernel so barrier yields show up too.
const BARRIER: &str = r#"
.kernel twophase (.param .u64 out) {
  .shared .u32 tile[32];
  .reg .u32 %r<4>;
  .reg .u64 %rd<4>;
entry:
  mov.u32 %r0, %tid.x;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  mov.u64 %rd1, tile;
  add.u64 %rd1, %rd1, %rd0;
  st.shared.u32 [%rd1], %r0;
  bar.sync 0;
  xor.b32 %r1, %r0, 31;
  cvt.u64.u32 %rd2, %r1;
  shl.u64 %rd2, %rd2, 2;
  mov.u64 %rd3, tile;
  add.u64 %rd3, %rd3, %rd2;
  ld.shared.u32 %r2, [%rd3];
  ld.param.u64 %rd3, [out];
  add.u64 %rd3, %rd3, %rd0;
  st.global.u32 [%rd3], %r2;
  ret;
}
"#;

fn run_divergent(config: &ExecConfig) -> LaunchStats {
    let n = 128usize;
    // No persistent cache: these tests assert cold-compile phase timers,
    // which a warm disk cache legitimately skips.
    let dev = Device::with_persist(MachineModel::sandybridge_sse(), 4 << 20, None);
    dev.register_source(DIVERGENT).unwrap();
    let seeds: Vec<u32> = (0..n as u32).map(|i| i * 7 + 1).collect();
    let ps = dev.malloc(n * 4).unwrap();
    let po = dev.malloc(n * 4).unwrap();
    dev.copy_u32_htod(ps, &seeds).unwrap();
    dev.launch(
        "collatz_steps",
        [(n as u32).div_ceil(32), 1, 1],
        [32, 1, 1],
        &[ParamValue::Ptr(ps), ParamValue::Ptr(po), ParamValue::U32(n as u32)],
        config,
    )
    .unwrap()
}

fn run_barrier(config: &ExecConfig) -> LaunchStats {
    let dev = Device::with_persist(MachineModel::sandybridge_sse(), 1 << 20, None);
    dev.register_source(BARRIER).unwrap();
    let po = dev.malloc(32 * 4).unwrap();
    dev.launch("twophase", [1, 1, 1], [32, 1, 1], &[ParamValue::Ptr(po)], config).unwrap()
}

#[test]
fn divergent_kernel_yields_and_occupancy() {
    let _guard = TRACE_LOCK.lock().unwrap();
    trace::reset();
    trace::enable();

    run_divergent(&ExecConfig::dynamic(4).with_workers(1));
    run_barrier(&ExecConfig::dynamic(4).with_workers(1));
    let report = TraceReport::capture();
    trace::disable();
    trace::reset();

    // Collatz trip counts are data-dependent: warps must yield at
    // divergent branches many times before draining via exit.
    assert!(report.counter("yield_branch") > 0, "no branch yields recorded");
    assert!(report.counter("yield_exit") > 0, "no exit yields recorded");
    assert!(report.counter("yield_barrier") > 0, "no barrier yields recorded");

    // Occupancy: full warps while the pool is deep, partial-width warps
    // as stragglers drain — the histogram must not be single-bucket.
    let nonzero = report.occupancy.iter().filter(|&&c| c > 0).count();
    assert!(nonzero >= 2, "expected a non-trivial occupancy histogram, got {:?}", report.occupancy);
    assert!(report.occupancy.len() > 4 && report.occupancy[4] > 0, "no full warps formed");
    let entries: u64 = report.occupancy.iter().sum();
    assert_eq!(entries, report.counter("warp_entries"));

    // Structured events carry the same story, tagged with the kernel.
    let mut yields = 0usize;
    let mut reasons = std::collections::HashSet::new();
    for e in &report.events {
        if let EventReport::Yield { kernel, reason, width, .. } = e {
            assert!(
                kernel == "collatz_steps" || kernel == "twophase",
                "unexpected kernel `{kernel}`"
            );
            assert!((1..=4).contains(width));
            reasons.insert(*reason);
            yields += 1;
        }
    }
    assert!(yields > 0, "no yield events in the ring");
    assert!(reasons.contains("branch") && reasons.contains("exit"), "{reasons:?}");

    // Cache traffic: every (warp size, variant) specialization compiled
    // once; re-entries at the same width hit.
    assert!(report.counter("cache_miss") > 0);
    assert!(report.counter("cache_hit") > 0);

    // The vectorizer promoted something at width 4.
    assert!(report.counter("spec_promoted") > 0, "nothing was vector-promoted");
}

#[test]
fn compile_phase_timers_nest() {
    let _guard = TRACE_LOCK.lock().unwrap();
    trace::reset();
    trace::enable();

    run_divergent(&ExecConfig::dynamic(4).with_workers(1));
    let report = TraceReport::capture();
    trace::disable();
    trace::reset();

    let total_of = |phase: &str| -> u64 {
        report.phases.iter().filter(|p| p.phase == phase).map(|p| p.total_ns).sum()
    };
    let depths_of = |prefix: &str| -> Vec<usize> {
        report.phases.iter().filter(|p| p.phase.starts_with(prefix)).map(|p| p.depth).collect()
    };

    // Every top-level compiler phase ran and was timed. Exact-name depth
    // check: `translate:*` sub-phases share the prefix but nest deeper.
    for phase in ["parse", "translate", "specialize"] {
        assert!(
            report.phases.iter().any(|p| p.phase == phase),
            "phase `{phase}` missing from {:?}",
            report.phases
        );
        let depths: Vec<usize> =
            report.phases.iter().filter(|p| p.phase == phase).map(|p| p.depth).collect();
        assert!(depths.iter().all(|&d| d == 0), "`{phase}` not at depth 0");
    }

    // Translation sub-phases nest inside translate, one level down, and
    // their total time is bounded by the enclosing translate time.
    let tr_depths = depths_of("translate:");
    assert!(!tr_depths.is_empty(), "no translate:* phases recorded");
    assert!(tr_depths.iter().all(|&d| d == 1), "translate sub-phases not at depth 1");
    let tr_ns: u64 = report
        .phases
        .iter()
        .filter(|p| p.phase.starts_with("translate:"))
        .map(|p| p.total_ns)
        .sum();
    assert!(
        tr_ns <= total_of("translate"),
        "nested translate time {tr_ns} exceeds translate time {}",
        total_of("translate")
    );

    // Optimization passes run nested inside specialize, one level down,
    // and their total time is bounded by the enclosing specialize time.
    let opt_depths = depths_of("opt:");
    assert!(!opt_depths.is_empty(), "no opt:* phases recorded");
    assert!(opt_depths.iter().all(|&d| d == 1), "opt passes not nested at depth 1");
    let opt_ns: u64 =
        report.phases.iter().filter(|p| p.phase.starts_with("opt:")).map(|p| p.total_ns).sum();
    assert!(
        opt_ns <= total_of("specialize"),
        "nested opt time {opt_ns} exceeds specialize time {}",
        total_of("specialize")
    );

    // Specialize ran once per compiled (warp size, variant) pairing.
    let spec_calls: u64 =
        report.phases.iter().filter(|p| p.phase == "specialize").map(|p| p.calls).sum();
    assert_eq!(spec_calls, report.counter("cache_miss"));
}

#[test]
fn disabled_tracing_records_nothing_and_preserves_stats() {
    let _guard = TRACE_LOCK.lock().unwrap();
    trace::reset();
    trace::disable();

    let disabled_stats = run_divergent(&ExecConfig::dynamic(4).with_workers(1));
    let report = TraceReport::capture();

    for (name, value) in &report.counters {
        assert_eq!(*value, 0, "counter `{name}` advanced while disabled");
    }
    assert!(report.events.is_empty(), "events recorded while disabled");
    assert!(report.phases.is_empty(), "phases recorded while disabled");
    assert!(report.specializations.is_empty());
    assert!(report.occupancy.iter().all(|&c| c == 0), "{:?}", report.occupancy);

    // Tracing must not perturb execution: identical launch, identical
    // deterministic statistics with tracing on.
    trace::enable();
    let enabled_stats = run_divergent(&ExecConfig::dynamic(4).with_workers(1));
    trace::disable();
    trace::reset();
    assert_eq!(disabled_stats, enabled_stats);
}

#[test]
fn report_round_trips_to_json() {
    let _guard = TRACE_LOCK.lock().unwrap();
    trace::reset();
    trace::enable();

    run_divergent(&ExecConfig::dynamic(4).with_workers(1));
    let report = TraceReport::capture();
    trace::disable();
    trace::reset();

    let json = report.to_json();
    // Structural sanity without a JSON parser dependency: balanced
    // braces, the expected top-level sections, and no raw control bytes.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    for section in [
        "\"counters\"",
        "\"warp_occupancy\"",
        "\"yield_reasons\"",
        "\"compile_phases\"",
        "\"specializations\"",
        "\"events\"",
    ] {
        assert!(json.contains(section), "missing {section}");
    }
    assert!(json.contains("\"collatz_steps\""));
    assert!(!json.bytes().any(|b| b < 0x20 && b != b'\n'), "unescaped control bytes");

    let summary = report.summary();
    assert!(summary.contains("warp occupancy"), "{summary}");
}
