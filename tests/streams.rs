//! Stream semantics of the persistent executor: launches on one stream
//! run in submission order, launches on different streams overlap when
//! the host has the parallelism for it, and cancelling one stream's
//! launch leaves its siblings' results bit-identical.

use std::time::{Duration, Instant};

use dpvk::core::{Device, ExecConfig, ParamValue};
use dpvk::vm::MachineModel;

/// `triple`: in-place `data[i] *= 3` (dependent across launches — a
/// chain of k launches yields `*3^k` only if they run in order).
/// `burn`: `iters` loop iterations per thread, then `out[tid] =
/// tid * iters` — pure compute to occupy a worker for a measurable time.
const MODULE: &str = r#"
.kernel triple (.param .u64 data, .param .u32 n) {
  .reg .u32 %r<3>;
  .reg .u64 %rd<2>;
  .reg .pred %p<1>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r2, [%rd1];
  mul.lo.u32 %r2, %r2, 3;
  st.global.u32 [%rd1], %r2;
done:
  ret;
}

.kernel burn (.param .u64 out, .param .u32 iters) {
  .reg .u32 %r<4>;
  .reg .u64 %rd<2>;
  .reg .pred %p<1>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [iters];
  mov.u32 %r2, 0;
  mov.u32 %r3, 0;
loop:
  add.u32 %r3, %r3, %r0;
  add.u32 %r2, %r2, 1;
  setp.lt.u32 %p0, %r2, %r1;
  @%p0 bra loop;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.u32 [%rd1], %r3;
  ret;
}
"#;

fn device() -> Device {
    let dev = Device::new(MachineModel::sandybridge_sse(), 16 << 20);
    dev.register_source(MODULE).unwrap();
    dev
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The overlap test measures wall time and the metrics test reads global
/// trace counters; serialize the whole binary so tests don't perturb
/// each other.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn launches_on_one_stream_run_in_submission_order() {
    let _g = serial();
    let dev = device();
    let n = 256u32;
    let ptr = dev.malloc(n as usize * 4).unwrap();
    let input: Vec<u32> = (1..=n).collect();
    dev.copy_u32_htod(ptr, &input).unwrap();

    let stream = dev.stream();
    let config = ExecConfig::dynamic(4).with_workers(2);
    let args = [ParamValue::Ptr(ptr), ParamValue::U32(n)];
    let handles: Vec<_> = (0..4)
        .map(|_| stream.launch("triple", [n / 64, 1, 1], [64, 1, 1], &args, &config).unwrap())
        .collect();

    // Waiting on the LAST handle implies every earlier launch of the
    // stream has retired: in-order means no successor starts (let alone
    // finishes) before its predecessor completes.
    handles.last().unwrap().wait().unwrap();
    for (i, h) in handles.iter().enumerate() {
        assert!(h.is_finished(), "launch {i} not finished although its successor completed");
        h.try_wait().expect("finished handle must yield a result").unwrap();
    }
    stream.synchronize();
    dev.synchronize();

    // Four dependent in-place triplings compose only when ordered:
    // data[i] = input[i] * 3^4.
    let out = dev.copy_u32_dtoh(ptr, n as usize).unwrap();
    for (i, &v) in out.iter().enumerate() {
        assert_eq!(v, input[i].wrapping_mul(81), "element {i}");
    }
}

/// Pick a `burn` iteration count that keeps one launch busy for roughly
/// `target` on this machine, so the timing comparison below measures
/// overlap rather than noise.
fn calibrate_burn(dev: &Device, out: dpvk::core::DevicePtr, target: Duration) -> u32 {
    let config = ExecConfig::dynamic(4).with_workers(1);
    let probe = 20_000u32;
    let start = Instant::now();
    dev.launch(
        "burn",
        [1, 1, 1],
        [32, 1, 1],
        &[ParamValue::Ptr(out), ParamValue::U32(probe)],
        &config,
    )
    .unwrap();
    let elapsed = start.elapsed().max(Duration::from_micros(100));
    let scale = target.as_secs_f64() / elapsed.as_secs_f64();
    ((probe as f64 * scale) as u32).clamp(probe, 50_000_000)
}

#[test]
fn two_streams_overlap_on_a_parallel_host() {
    let _g = serial();
    let dev = device();
    let threads = 32u32;
    let pa = dev.malloc(threads as usize * 4).unwrap();
    let pb = dev.malloc(threads as usize * 4).unwrap();
    let config = ExecConfig::dynamic(4).with_workers(1);
    let iters = calibrate_burn(&dev, pa, Duration::from_millis(80));

    // Serial: the same two launches back to back.
    let start = Instant::now();
    for ptr in [pa, pb] {
        dev.launch(
            "burn",
            [1, 1, 1],
            [threads, 1, 1],
            &[ParamValue::Ptr(ptr), ParamValue::U32(iters)],
            &config,
        )
        .unwrap();
    }
    let serial = start.elapsed();

    // Overlapped: one launch per stream, submitted before either waits.
    let (sa, sb) = (dev.stream(), dev.stream());
    assert_ne!(sa.id(), sb.id(), "streams must be distinct");
    let start = Instant::now();
    let ha = sa
        .launch(
            "burn",
            [1, 1, 1],
            [threads, 1, 1],
            &[ParamValue::Ptr(pa), ParamValue::U32(iters)],
            &config,
        )
        .unwrap();
    let hb = sb
        .launch(
            "burn",
            [1, 1, 1],
            [threads, 1, 1],
            &[ParamValue::Ptr(pb), ParamValue::U32(iters)],
            &config,
        )
        .unwrap();
    ha.wait().unwrap();
    hb.wait().unwrap();
    let overlapped = start.elapsed();

    // Both runs computed the same thing.
    for ptr in [pa, pb] {
        let out = dev.copy_u32_dtoh(ptr, threads as usize).unwrap();
        for (tid, &v) in out.iter().enumerate() {
            assert_eq!(v, (tid as u32).wrapping_mul(iters), "thread {tid}");
        }
    }

    // The wall-clock claim needs real parallelism; a single-CPU host
    // time-slices the two workers and proves nothing either way.
    if host_parallelism() >= 2 && dev.pool_workers() >= 2 {
        assert!(
            overlapped < serial.mul_f64(0.85),
            "two one-worker launches on distinct streams should overlap: \
             overlapped {overlapped:?} vs serial {serial:?}"
        );
    }
}

#[test]
fn cancelling_one_stream_leaves_the_sibling_bit_identical() {
    let _g = serial();
    let dev = device();
    let n = 256u32;
    let config = ExecConfig::dynamic(4).with_workers(1);
    let input: Vec<u32> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();

    // Reference: the sibling workload alone, serially.
    let pref = dev.malloc(n as usize * 4).unwrap();
    dev.copy_u32_htod(pref, &input).unwrap();
    for _ in 0..4 {
        dev.launch(
            "triple",
            [n / 64, 1, 1],
            [64, 1, 1],
            &[ParamValue::Ptr(pref), ParamValue::U32(n)],
            &config,
        )
        .unwrap();
    }
    let reference = dev.copy_u32_dtoh(pref, n as usize).unwrap();

    // Victim on stream A: a long burn, cancelled mid-flight. Sibling on
    // stream B: the same four-launch triple chain as the reference.
    let pa = dev.malloc(32 * 4).unwrap();
    let pb = dev.malloc(n as usize * 4).unwrap();
    dev.copy_u32_htod(pb, &input).unwrap();
    let (sa, sb) = (dev.stream(), dev.stream());
    let victim = sa
        .launch(
            "burn",
            [1, 1, 1],
            [8, 1, 1],
            &[ParamValue::Ptr(pa), ParamValue::U32(100_000_000)],
            &config,
        )
        .unwrap();
    let siblings: Vec<_> = (0..4)
        .map(|_| {
            sb.launch(
                "triple",
                [n / 64, 1, 1],
                [64, 1, 1],
                &[ParamValue::Ptr(pb), ParamValue::U32(n)],
                &config,
            )
            .unwrap()
        })
        .collect();

    victim.cancel();
    let err = victim.wait().unwrap_err();
    assert!(err.is_cancelled(), "expected cancellation, got {err:?}");
    for h in &siblings {
        h.wait().unwrap();
    }

    // The cancelled stream cannot have perturbed the sibling stream.
    let out = dev.copy_u32_dtoh(pb, n as usize).unwrap();
    assert_eq!(out, reference, "sibling results must be bit-identical");

    // Neither the pool nor stream A is poisoned: a fresh launch on the
    // cancelled stream runs to completion.
    let h = sa
        .launch("burn", [1, 1, 1], [8, 1, 1], &[ParamValue::Ptr(pa), ParamValue::U32(64)], &config)
        .unwrap();
    h.wait().unwrap();
    assert_eq!(dev.copy_u32_dtoh(pa, 8).unwrap()[3], 3 * 64);
    dev.synchronize();
}

#[test]
fn four_streams_of_dependent_chains_stay_isolated() {
    // The CI stress configuration: four streams, each carrying a chain
    // of dependent in-place launches over its own buffer. Whatever the
    // pool interleaving, every chain must compose in order and no chain
    // may touch another's buffer.
    let _g = serial();
    let dev = device();
    let n = 256u32;
    let config = ExecConfig::dynamic(4).with_workers(1);
    let input: Vec<u32> = (1..=n).collect();

    let streams: Vec<_> = (0..4).map(|_| dev.stream()).collect();
    let bufs: Vec<_> = streams
        .iter()
        .map(|_| {
            let p = dev.malloc(n as usize * 4).unwrap();
            dev.copy_u32_htod(p, &input).unwrap();
            p
        })
        .collect();

    // Stream s gets a chain of s+2 triplings; interleave submissions
    // across streams so the queues fill while earlier launches run.
    let mut handles: Vec<Vec<_>> = streams.iter().map(|_| Vec::new()).collect();
    for round in 0..5 {
        for (s, stream) in streams.iter().enumerate() {
            if round < s + 2 {
                let args = [ParamValue::Ptr(bufs[s]), ParamValue::U32(n)];
                handles[s].push(
                    stream.launch("triple", [n / 64, 1, 1], [64, 1, 1], &args, &config).unwrap(),
                );
            }
        }
    }
    dev.synchronize();

    for (s, chain) in handles.iter().enumerate() {
        let mut want = 1u32;
        for h in chain {
            assert!(h.is_finished(), "stream {s}: launch unfinished after synchronize");
            h.try_wait().unwrap().unwrap();
            want = want.wrapping_mul(3);
        }
        let out = dev.copy_u32_dtoh(bufs[s], n as usize).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, input[i].wrapping_mul(want), "stream {s} element {i}");
        }
    }
}

#[test]
fn stream_metrics_reach_the_trace_report() {
    let _g = serial();
    dpvk::trace::enable();

    let dev = device();
    let ptr = dev.malloc(32 * 4).unwrap();
    let config = ExecConfig::dynamic(4).with_workers(1);
    let iters = calibrate_burn(&dev, ptr, Duration::from_millis(20));

    let stream = dev.stream();
    let handles: Vec<_> = (0..6)
        .map(|_| {
            stream
                .launch(
                    "burn",
                    [1, 1, 1],
                    [32, 1, 1],
                    &[ParamValue::Ptr(ptr), ParamValue::U32(iters)],
                    &config,
                )
                .unwrap()
        })
        .collect();
    for h in &handles {
        h.wait().unwrap();
    }

    let report = dpvk::trace::TraceReport::capture();
    // Submission outruns ~20ms launches, so later submissions must have
    // queued behind the stream's active launch.
    assert!(report.counter("launches_submitted") >= 6, "counters: {:?}", report.counters);
    assert!(report.counter("launches_retired") >= 6, "counters: {:?}", report.counters);
    assert!(report.counter("stream_queue_peak") >= 1, "counters: {:?}", report.counters);
    assert!(report.counter("pool_busy_peak") >= 1, "counters: {:?}", report.counters);
    let json = report.to_json();
    assert!(json.contains("\"type\":\"stream\""), "missing stream events: {json}");
    dpvk::trace::disable();
    dpvk::trace::reset();
}
