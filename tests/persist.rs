//! Warm-restart round-trip through the persistent translation cache.
//!
//! A "restart" here is a fresh [`Device`] over the same cache directory:
//! each device owns its in-memory translation cache, so a new device has
//! exactly the state a new process would have. The warm device must
//! rehydrate every compilation artifact from disk — zero nanoseconds in
//! translation and specialization — and produce bit-identical kernel
//! outputs under all three execution engines.

mod common;

use std::path::{Path, PathBuf};

use dpvk::core::{CacheStats, Device, Engine, ExecConfig, ParamValue, PersistConfig};
use dpvk::vm::MachineModel;

/// A kernel with divergence and a barrier, so specialization produces
/// exit handlers, spill slots and barrier bookkeeping — all of which
/// must survive the disk round trip.
const KERNEL: &str = r#"
.kernel collatz (.param .u64 data, .param .u32 n) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<3>;
  .reg .pred %p<4>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  shl.u32 %r2, %r0, 2;
  cvt.u64.u32 %rd0, %r2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r3, [%rd1];
  mov.u32 %r4, 0;
loop:
  setp.le.u32 %p1, %r3, 1;
  @%p1 bra store;
  and.b32 %r5, %r3, 1;
  setp.eq.u32 %p2, %r5, 0;
  @%p2 bra even;
  mad.lo.u32 %r3, %r3, 3, 1;
  bra next;
even:
  shr.u32 %r3, %r3, 1;
next:
  add.u32 %r4, %r4, 1;
  bar.sync 0;
  bra loop;
store:
  st.global.u32 [%rd1], %r4;
done:
  ret;
}
"#;

fn cache_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dpvk-warm-restart-{tag}-{}", std::process::id()))
}

/// One full "process": fresh device over `dir`, compile (or rehydrate),
/// launch, digest the output.
fn run_process(dir: &Path, engine: Engine) -> (u64, CacheStats) {
    let dev = Device::with_persist(
        MachineModel::sandybridge_sse(),
        1 << 20,
        Some(PersistConfig::at(dir)),
    );
    dev.register_source(KERNEL).unwrap();
    let n = 96u32;
    let input: Vec<u32> = (0..n).map(|i| i * 7 + 1).collect();
    let buf = dev.alloc(n as usize * 4).unwrap();
    dev.copy_u32_htod(buf.ptr(), &input).unwrap();
    dev.launch(
        "collatz",
        [n.div_ceil(32), 1, 1],
        [32, 1, 1],
        &[ParamValue::Ptr(buf.ptr()), ParamValue::U32(n)],
        &ExecConfig::dynamic(4).with_engine(engine),
    )
    .unwrap();
    let out = dev.copy_u32_dtoh(buf.ptr(), n as usize).unwrap();
    let bytes: Vec<u8> = out.iter().flat_map(|v| v.to_le_bytes()).collect();
    (common::digest_bytes(&bytes), dev.cache_stats())
}

#[test]
fn warm_restart_skips_translation_and_specialization() {
    for engine in [Engine::Tree, Engine::Bytecode, Engine::Jit] {
        let dir = cache_dir(&format!("{engine:?}"));
        let _ = std::fs::remove_dir_all(&dir);

        let (cold_digest, cold) = run_process(&dir, engine);
        assert!(cold.persist_writes >= 2, "[{engine:?}] cold run must persist: {cold:?}");
        assert!(cold.translate_ns > 0, "[{engine:?}] cold run must translate: {cold:?}");
        assert!(cold.specialize_ns > 0, "[{engine:?}] cold run must specialize: {cold:?}");

        let (warm_digest, warm) = run_process(&dir, engine);
        assert_eq!(
            cold_digest, warm_digest,
            "[{engine:?}] warm-restart output diverged from the cold run"
        );
        assert!(
            warm.persist_hits >= 2,
            "[{engine:?}] warm run must rehydrate translation and specialization: {warm:?}"
        );
        assert_eq!(warm.translate_ns, 0, "[{engine:?}] translation not skipped: {warm:?}");
        assert_eq!(warm.specialize_ns, 0, "[{engine:?}] specialization not skipped: {warm:?}");
        assert_eq!(warm.decode_ns, 0, "[{engine:?}] bytecode decode not skipped: {warm:?}");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn disk_cache_survives_unrelated_corruption() {
    // Scribble over one artifact between runs: the warm device must
    // detect it (checksum), quarantine the file, recompile, and still
    // produce identical output.
    let dir = cache_dir("corrupt");
    let _ = std::fs::remove_dir_all(&dir);

    let (cold_digest, _) = run_process(&dir, Engine::Bytecode);
    let mut artifacts: Vec<PathBuf> =
        std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
    artifacts.sort();
    assert!(!artifacts.is_empty(), "cold run left no artifacts");
    std::fs::write(&artifacts[0], b"not an artifact").unwrap();

    let (warm_digest, warm) = run_process(&dir, Engine::Bytecode);
    assert_eq!(cold_digest, warm_digest, "corruption recovery changed outputs");
    assert!(warm.persist_misses >= 1, "corrupt artifact must read as a miss: {warm:?}");
    assert!(
        !artifacts[0].exists() || std::fs::read(&artifacts[0]).unwrap() != b"not an artifact",
        "corrupt artifact must be scrubbed or rewritten"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
