//! Cross-crate integration tests: every execution policy must compute the
//! same results, across CTA shapes, worker counts and machine models.

use dpvk::core::{Device, ExecConfig, ParamValue};
use dpvk::vm::MachineModel;

const STENCIL: &str = r#"
.kernel shift_add (.param .u64 a, .param .u64 b, .param .u32 n) {
  .reg .u32 %r<6>;
  .reg .u64 %rd<6>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  shl.u32 %r2, %r0, 2;
  cvt.u64.u32 %rd0, %r2;
  ld.param.u64 %rd1, [a];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r3, [%rd1];
  shl.u32 %r4, %r3, 1;
  xor.b32 %r4, %r4, %r0;
  ld.param.u64 %rd2, [b];
  add.u64 %rd2, %rd2, %rd0;
  st.global.u32 [%rd2], %r4;
done:
  ret;
}
"#;

fn run_shift_add(config: &ExecConfig, model: MachineModel, block: u32, n: u32) -> Vec<u32> {
    let dev = Device::new(model, 4 << 20);
    dev.register_source(STENCIL).unwrap();
    let pa = dev.malloc(n as usize * 4).unwrap();
    let pb = dev.malloc(n as usize * 4).unwrap();
    let input: Vec<u32> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();
    dev.copy_u32_htod(pa, &input).unwrap();
    dev.launch(
        "shift_add",
        [n.div_ceil(block), 1, 1],
        [block, 1, 1],
        &[ParamValue::Ptr(pa), ParamValue::Ptr(pb), ParamValue::U32(n)],
        config,
    )
    .unwrap();
    dev.copy_u32_dtoh(pb, n as usize).unwrap()
}

fn expected(n: u32) -> Vec<u32> {
    (0..n).map(|i| (i.wrapping_mul(2654435761) << 1) ^ i).collect()
}

#[test]
fn all_policies_agree_across_block_shapes() {
    let n = 333; // awkward size: partial CTAs diverge at the bound check
    let want = expected(n);
    for block in [1u32, 7, 32, 64, 256] {
        for config in [
            ExecConfig::baseline(),
            ExecConfig::dynamic(2),
            ExecConfig::dynamic(4),
            ExecConfig::static_tie(4),
        ] {
            let got = run_shift_add(&config, MachineModel::sandybridge_sse(), block, n);
            assert_eq!(got, want, "block={block}, config={config:?}");
        }
    }
}

#[test]
fn machine_models_do_not_change_results() {
    let n = 128;
    let want = expected(n);
    for model in
        [MachineModel::sandybridge_sse(), MachineModel::sandybridge_avx(), MachineModel::wide16()]
    {
        let got = run_shift_add(&ExecConfig::dynamic(4), model, 64, n);
        assert_eq!(got, want);
    }
}

#[test]
fn worker_count_does_not_change_results() {
    let n = 512;
    let want = expected(n);
    for workers in [1usize, 2, 4, 8] {
        let got = run_shift_add(
            &ExecConfig::dynamic(4).with_workers(workers),
            MachineModel::sandybridge_sse(),
            64,
            n,
        );
        assert_eq!(got, want, "workers={workers}");
    }
}

#[test]
fn modeled_cycles_are_deterministic_per_worker_partition() {
    let dev = || {
        let d = Device::new(MachineModel::sandybridge_sse(), 4 << 20);
        d.register_source(STENCIL).unwrap();
        d
    };
    let run = |d: &Device| {
        let pa = d.malloc(256 * 4).unwrap();
        let pb = d.malloc(256 * 4).unwrap();
        d.copy_u32_htod(pa, &vec![3u32; 256]).unwrap();
        d.launch(
            "shift_add",
            [4, 1, 1],
            [64, 1, 1],
            &[ParamValue::Ptr(pa), ParamValue::Ptr(pb), ParamValue::U32(256)],
            &ExecConfig::dynamic(4).with_workers(1),
        )
        .unwrap()
    };
    let (d1, d2) = (dev(), dev());
    assert_eq!(run(&d1).exec, run(&d2).exec);
}

#[test]
fn wider_machines_speed_up_wide_warps() {
    // The paper's scalability claim: the transformation is width-agnostic;
    // an 8-wide machine executes width-8 warps in fewer modeled cycles
    // than a 4-wide machine does.
    let dev = |model: MachineModel| {
        let d = Device::new(model, 4 << 20);
        d.register_source(STENCIL).unwrap();
        d
    };
    let cycles = |d: &Device| {
        let pa = d.malloc(1024 * 4).unwrap();
        let pb = d.malloc(1024 * 4).unwrap();
        d.copy_u32_htod(pa, &vec![1u32; 1024]).unwrap();
        d.launch(
            "shift_add",
            [16, 1, 1],
            [64, 1, 1],
            &[ParamValue::Ptr(pa), ParamValue::Ptr(pb), ParamValue::U32(1024)],
            &ExecConfig::dynamic(8).with_workers(1),
        )
        .unwrap()
        .exec
        .total_cycles()
    };
    let sse = cycles(&dev(MachineModel::sandybridge_sse()));
    let avx = cycles(&dev(MachineModel::sandybridge_avx()));
    assert!(avx < sse, "avx {avx} should beat sse {sse} on width-8 warps");
}
