//! Integration tests of adaptive width specialization (`DPVK_ADAPT=on`
//! semantics driven through [`AdaptConfig`]): a kernel launched at a
//! deliberately bad warp width must converge to the best static width
//! by the policy's own metric (modeled cycles per launch), adaptation
//! must never change computed results across engines or starting
//! widths, and re-specialization events must surface in the trace
//! report and the flight-recorder timeline.

use std::sync::Mutex;

use dpvk::core::{AdaptConfig, Device, Engine, ExecConfig, ParamValue};
use dpvk::trace::{self, timeline, TraceReport};
use dpvk::vm::MachineModel;

/// The tracer is process-global; tests in this binary that touch it
/// serialize on this lock and reset state around themselves.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Uniform compute kernel: a fixed-trip-count loop of integer mixing,
/// no divergence, so every width vectorizes fully and the modeled
/// cycle ranking across widths is strict.
const UNIFORM: &str = r#"
.kernel adapt (.param .u64 out) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<3>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  mov.u32 %r1, %r0;
  mov.u32 %r2, 16;
loop:
  mul.lo.u32 %r1, %r1, 2654435761;
  xor.b32 %r1, %r1, %r0;
  add.u32 %r1, %r1, 97;
  sub.u32 %r2, %r2, 1;
  setp.gt.u32 %p0, %r2, 0;
  @%p0 bra loop;
  shl.u32 %r3, %r0, 2;
  cvt.u64.u32 %rd0, %r3;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.u32 [%rd1], %r1;
  ret;
}
"#;

/// Divergent kernel: data-dependent trip counts, so warps fragment and
/// the width switch crosses re-formation paths too.
const DIVERGENT: &str = r#"
.kernel adapt (.param .u64 out) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<3>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  and.b32 %r2, %r0, 7;
  add.u32 %r2, %r2, 1;
  mov.u32 %r1, %r0;
loop:
  mul.lo.u32 %r1, %r1, 1103515245;
  add.u32 %r1, %r1, 12345;
  sub.u32 %r2, %r2, 1;
  setp.gt.u32 %p0, %r2, 0;
  @%p0 bra loop;
  shl.u32 %r3, %r0, 2;
  cvt.u64.u32 %rd0, %r3;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.u32 [%rd1], %r1;
  ret;
}
"#;

const N: u32 = 128;
const GRID: [u32; 3] = [2, 1, 1];
const BLOCK: [u32; 3] = [64, 1, 1];
const CANDIDATES: [u32; 3] = [2, 4, 8];

fn fresh(src: &str) -> (Device, dpvk::core::DevicePtr) {
    let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 20);
    dev.register_source(src).unwrap();
    let out = dev.malloc(N as usize * 4).unwrap();
    (dev, out)
}

/// Modeled cycles of one launch at a fixed static width, adaptation off.
fn static_cycles(src: &str, width: u32, engine: Engine) -> u64 {
    let (dev, out) = fresh(src);
    let config = ExecConfig::dynamic(width)
        .with_workers(1)
        .with_engine(engine)
        .with_adapt(AdaptConfig::off());
    let stats = dev.launch("adapt", GRID, BLOCK, &[ParamValue::Ptr(out)], &config).unwrap();
    stats.exec.total_cycles()
}

/// Best candidate width by the policy's own metric: fewest modeled
/// cycles per launch, ties to the narrower width (the commit rule).
fn best_static_width(src: &str, engine: Engine) -> (u32, u32) {
    let mut best: Option<(u32, u64)> = None;
    let mut worst: Option<(u32, u64)> = None;
    for &w in &CANDIDATES {
        let c = static_cycles(src, w, engine);
        if best.is_none_or(|(_, bc)| c < bc) {
            best = Some((w, c));
        }
        if worst.is_none_or(|(_, wc)| c > wc) {
            worst = Some((w, c));
        }
    }
    (best.unwrap().0, worst.unwrap().0)
}

/// Drive launches until the policy commits (or the bound is hit);
/// returns the number of launches used.
fn run_until_converged(
    dev: &Device,
    out: dpvk::core::DevicePtr,
    config: &ExecConfig,
    bound: usize,
) -> usize {
    for i in 1..=bound {
        dev.launch("adapt", GRID, BLOCK, &[ParamValue::Ptr(out)], config).unwrap();
        if dev.width_policy("adapt").chosen_width.is_some() {
            return i;
        }
        // Background respecializations compile on the same pool; give
        // the queue a beat so readiness isn't starved by the launch loop.
        dev.synchronize();
    }
    bound
}

/// A kernel launched at the deliberately worst static width converges,
/// within a bounded number of launches, to exactly the width a static
/// sweep of modeled cycles would pick — and stays there.
#[test]
fn converges_to_best_static_width_from_worst_start() {
    let threshold = 2u32;
    for src in [UNIFORM, DIVERGENT] {
        let (best, worst) = best_static_width(src, Engine::Bytecode);
        let (dev, out) = fresh(src);
        let adapt = AdaptConfig::on().with_threshold(threshold).with_candidates(&CANDIDATES);
        let config = ExecConfig::dynamic(worst).with_workers(1).with_adapt(adapt);

        // Warm-up + one threshold of measurement per candidate, plus
        // slack for background-compile latency: well under this bound.
        let bound = 64;
        let used = run_until_converged(&dev, out, &config, bound);
        let snap = dev.width_policy("adapt");
        assert_eq!(
            snap.chosen_width,
            Some(best),
            "started at w{worst}, expected convergence to static-best w{best}, got {snap:?}"
        );
        assert!(used < bound, "policy did not commit within {bound} launches");
        assert_eq!(snap.active_width, Some(best), "launches not steered to the chosen width");
        // Started inside the candidate set, so every *other* candidate
        // needed one background respecialization.
        assert_eq!(snap.respec_events, (CANDIDATES.len() - 1) as u64);

        // The commitment is sticky: more launches change nothing.
        for _ in 0..4 {
            dev.launch("adapt", GRID, BLOCK, &[ParamValue::Ptr(out)], &config).unwrap();
        }
        assert_eq!(dev.width_policy("adapt").chosen_width, Some(best));
    }
}

/// Observe mode profiles launches but never steers or respecializes.
#[test]
fn observe_mode_counts_without_steering() {
    let (dev, out) = fresh(UNIFORM);
    let config = ExecConfig::dynamic(2).with_workers(1).with_adapt(AdaptConfig::observe());
    for _ in 0..6 {
        dev.launch("adapt", GRID, BLOCK, &[ParamValue::Ptr(out)], &config).unwrap();
    }
    let snap = dev.width_policy("adapt");
    assert_eq!(snap.launches, 6);
    assert_eq!(snap.chosen_width, None);
    assert_eq!(snap.active_width, None);
    assert_eq!(snap.respec_events, 0);
}

/// Width adaptation never changes what is computed: for every engine
/// and every starting width, every launch of an adapting device —
/// including the ones that straddle a width switch — produces the same
/// memory image as a non-adapting reference.
#[test]
fn adaptation_is_bit_identical_across_widths_and_engines() {
    for src in [UNIFORM, DIVERGENT] {
        for engine in [Engine::Bytecode, Engine::Tree, Engine::Jit] {
            // Reference image from the scalar-equivalent static config.
            let (ref_dev, ref_out) = fresh(src);
            let ref_config = ExecConfig::dynamic(4)
                .with_workers(1)
                .with_engine(engine)
                .with_adapt(AdaptConfig::off());
            ref_dev.launch("adapt", GRID, BLOCK, &[ParamValue::Ptr(ref_out)], &ref_config).unwrap();
            let reference = ref_dev.copy_u32_dtoh(ref_out, N as usize).unwrap();

            for start in CANDIDATES {
                let (dev, out) = fresh(src);
                let adapt = AdaptConfig::on().with_threshold(1).with_candidates(&CANDIDATES);
                let config = ExecConfig::dynamic(start)
                    .with_workers(1)
                    .with_engine(engine)
                    .with_adapt(adapt);
                for launch in 0..12 {
                    dev.launch("adapt", GRID, BLOCK, &[ParamValue::Ptr(out)], &config).unwrap();
                    let got = dev.copy_u32_dtoh(out, N as usize).unwrap();
                    assert_eq!(
                        got,
                        reference,
                        "{} start=w{start} launch {launch}: adaptation changed the output",
                        engine.label()
                    );
                    dev.synchronize();
                }
            }
        }
    }
}

/// Re-specialization is observable: the trace report counts respec
/// events and records the committed width, the JSON export carries
/// both, and the flight recorder emits a `Respecialize` span on the
/// worker track that ran the background compile.
#[test]
fn respec_events_surface_in_trace_and_timeline() {
    let _guard = TRACE_LOCK.lock().unwrap();
    trace::reset();
    trace::enable();

    let (dev, out) = fresh(UNIFORM);
    let adapt = AdaptConfig::on().with_threshold(2).with_candidates(&CANDIDATES);
    let config = ExecConfig::dynamic(CANDIDATES[0]).with_workers(1).with_adapt(adapt);
    run_until_converged(&dev, out, &config, 64);
    let snap = dev.width_policy("adapt");
    assert!(snap.chosen_width.is_some(), "policy did not converge under tracing: {snap:?}");

    let report = TraceReport::capture();
    let spans = timeline::spans();
    trace::disable();
    trace::reset();

    assert_eq!(report.counter("respec_events"), snap.respec_events);
    assert!(
        report.width_chosen.iter().any(|(k, w)| k == "adapt" && Some(*w) == snap.chosen_width),
        "committed width missing from report: {:?}",
        report.width_chosen
    );
    assert!(
        report.width_occupancy.iter().any(|(k, _, warps)| k == "adapt" && *warps > 0),
        "per-width occupancy missing from report"
    );
    let json = report.to_json();
    assert!(json.contains("\"respec_events\""), "respec counter missing from JSON");
    assert!(json.contains("\"width_chosen\""), "width_chosen missing from JSON");
    let respec_spans =
        spans.iter().filter(|s| s.kind == timeline::SpanKind::Respecialize).count() as u64;
    assert_eq!(
        respec_spans, snap.respec_events,
        "timeline Respecialize spans do not match scheduled respecializations"
    );
}
