//! Integration suite for the multi-tenant kernel service: full TCP
//! round trips through [`dpvk::server::Client`] against an in-process
//! [`dpvk::server::Server`], covering correctness, tenant isolation,
//! admission control / load shedding, and the typed error surface.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dpvk::server::protocol::{read_frame, write_frame};
use dpvk::server::{
    Client, LaunchSpec, Response, Server, ServerConfig, ServerHandle, WireBuffer, WireParam,
};
use dpvk::vm::MachineModel;

/// In-place `data[i] *= 3` over `n` u32 elements.
const TRIPLE: &str = r#"
.kernel triple (.param .u64 data, .param .u32 n) {
  .reg .u32 %r<3>;
  .reg .u64 %rd<2>;
  .reg .pred %p<1>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r2, [%rd1];
  mul.lo.u32 %r2, %r2, 3;
  st.global.u32 [%rd1], %r2;
done:
  ret;
}
"#;

/// `out[i] = a * i + b` — a second kernel so two tenants can own
/// different entry points.
const AFFINE: &str = r#"
.kernel affine (.param .u64 out, .param .u32 a, .param .u32 b, .param .u32 n) {
  .reg .u32 %r<5>;
  .reg .u64 %rd<2>;
  .reg .pred %p<1>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  ld.param.u32 %r2, [a];
  ld.param.u32 %r3, [b];
  mad.lo.u32 %r4, %r2, %r0, %r3;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.u32 [%rd1], %r4;
done:
  ret;
}
"#;

/// A kernel that never terminates: the only block branches to itself.
/// Its launches end only by deadline kill.
const SPIN: &str = r#"
.kernel spin (.param .u32 n) {
  .reg .u32 %r<1>;
entry:
  bra entry;
}
"#;

fn start_server(config: ServerConfig) -> ServerHandle {
    Server::bind(MachineModel::sandybridge_sse(), 8 << 20, config)
        .expect("bind")
        .start()
        .expect("start")
}

fn u32s_to_bytes(vals: impl IntoIterator<Item = u32>) -> Vec<u8> {
    vals.into_iter().flat_map(u32::to_le_bytes).collect()
}

fn bytes_to_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect()
}

fn triple_spec(tenant: &str, n: u32) -> LaunchSpec {
    LaunchSpec {
        tenant: tenant.into(),
        kernel: "triple".into(),
        grid: [n.div_ceil(64), 1, 1],
        block: [64, 1, 1],
        deadline_ms: 0,
        buffers: vec![WireBuffer { bytes: u32s_to_bytes(0..n), read_back: true }],
        params: vec![WireParam::Buffer(0), WireParam::U32(n)],
    }
}

fn expect_error(resp: &Response, want_code: &str) -> (bool, u32) {
    match resp {
        Response::Error { code, retryable, attempts, .. } => {
            assert_eq!(code, want_code, "unexpected error code in {resp:?}");
            (*retryable, *attempts)
        }
        other => panic!("expected `{want_code}` error, got {other:?}"),
    }
}

#[test]
fn register_launch_read_back_round_trip() {
    let handle = start_server(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    assert_eq!(client.register("acme", TRIPLE).unwrap(), Response::Registered);
    // Re-registering your own module is idempotent, not a conflict.
    assert_eq!(client.register("acme", TRIPLE).unwrap(), Response::Registered);

    let n = 1000u32;
    match client.launch(triple_spec("acme", n)).unwrap() {
        Response::Launched { attempts, degraded, outputs } => {
            assert_eq!(attempts, 1);
            assert!(!degraded);
            assert_eq!(outputs.len(), 1);
            let out = bytes_to_u32s(&outputs[0]);
            assert_eq!(out.len(), n as usize);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, 3 * i as u32, "element {i}");
            }
        }
        other => panic!("expected Launched, got {other:?}"),
    }

    let stats = client.stats("acme").unwrap();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
    assert!(stats.exec_ns > 0, "completed launch must charge exec time");
    // Device-heap observability rides on the same response: the launch
    // above allocated real device memory, so the high-water mark is up.
    assert!(stats.heap_high_water > 0, "launch must move the heap high-water mark");
    // Adaptation is off by default: no width committed, no respecs.
    assert_eq!(stats.chosen_width, 0);
    assert_eq!(stats.respec_events, 0);
    handle.shutdown();
}

#[test]
fn repeated_launches_reuse_pooled_buffers_and_stay_correct() {
    // A long-lived serving process must not leak device heap per request
    // (the device allocator is a bump allocator); correctness across
    // many recycled launches is the observable guarantee here.
    let handle = start_server(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.register("acme", TRIPLE).unwrap();

    let n = 256u32;
    let mut digests = Vec::new();
    for _ in 0..20 {
        match client.launch(triple_spec("acme", n)).unwrap() {
            Response::Launched { outputs, .. } => {
                digests.push(common::digest_bytes(&outputs[0]));
            }
            other => panic!("expected Launched, got {other:?}"),
        }
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "identical launches must produce identical outputs"
    );
    handle.shutdown();
}

#[test]
fn tenant_isolation_denied_not_found_and_name_conflict() {
    let handle = start_server(ServerConfig::default());
    let mut alice = Client::connect(handle.addr()).unwrap();
    let mut bob = Client::connect(handle.addr()).unwrap();

    assert_eq!(alice.register("alice", TRIPLE).unwrap(), Response::Registered);
    assert_eq!(bob.register("bob", AFFINE).unwrap(), Response::Registered);

    // Bob may not launch Alice's kernel...
    let (retryable, _) = expect_error(&bob.launch(triple_spec("bob", 64)).unwrap(), "denied");
    assert!(!retryable);
    // ...nor register a module that would shadow it.
    expect_error(&bob.register("bob", TRIPLE).unwrap(), "name_conflict");

    // An unregistered kernel is not_found, not denied.
    let mut spec = triple_spec("bob", 64);
    spec.kernel = "nonexistent".into();
    expect_error(&bob.launch(spec).unwrap(), "not_found");

    // The conflict must not have clobbered Alice's kernel.
    match alice.launch(triple_spec("alice", 64)).unwrap() {
        Response::Launched { outputs, .. } => {
            assert_eq!(bytes_to_u32s(&outputs[0])[3], 9);
        }
        other => panic!("expected Launched, got {other:?}"),
    }

    // Bob's own kernel still works: isolation failures are per-request.
    let n = 64u32;
    let resp = bob
        .launch(LaunchSpec {
            tenant: "bob".into(),
            kernel: "affine".into(),
            grid: [1, 1, 1],
            block: [64, 1, 1],
            deadline_ms: 0,
            buffers: vec![WireBuffer { bytes: vec![0; n as usize * 4], read_back: true }],
            params: vec![
                WireParam::Buffer(0),
                WireParam::U32(5),
                WireParam::U32(7),
                WireParam::U32(n),
            ],
        })
        .unwrap();
    match resp {
        Response::Launched { outputs, .. } => {
            let out = bytes_to_u32s(&outputs[0]);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, 5 * i as u32 + 7);
            }
        }
        other => panic!("expected Launched, got {other:?}"),
    }

    let bob_stats = bob.stats("bob").unwrap();
    assert_eq!(bob_stats.failed, 2, "denied + not_found both count as failures");
    assert_eq!(bob_stats.completed, 1);
    handle.shutdown();
}

#[test]
fn bad_source_and_bad_buffer_index_surface_typed_errors() {
    let handle = start_server(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    expect_error(&client.register("acme", ".kernel oops {").unwrap(), "ptx");

    client.register("acme", TRIPLE).unwrap();
    let mut spec = triple_spec("acme", 64);
    spec.params[0] = WireParam::Buffer(5);
    let (retryable, attempts) = expect_error(&client.launch(spec).unwrap(), "bad_launch");
    assert!(!retryable);
    assert_eq!(attempts, 0, "launch must be rejected before any attempt");
    handle.shutdown();
}

#[test]
fn malformed_frames_get_proto_errors_not_hangups() {
    let handle = start_server(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // An unknown request tag.
    write_frame(&mut stream, &[0xEE]).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("server hung up");
    expect_error(&Response::decode(&payload).unwrap(), "proto");

    // A truncated Register payload on the same connection: the server
    // answered the previous garbage and keeps serving.
    write_frame(&mut stream, &[1, 0xFF]).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("server hung up");
    expect_error(&Response::decode(&payload).unwrap(), "proto");

    // A frame that *claims* to be larger than MAX_FRAME is refused at
    // the framing layer; the connection closes rather than allocating.
    let len = (dpvk::server::protocol::MAX_FRAME + 1).to_le_bytes();
    stream.write_all(&len).unwrap();
    assert!(read_frame(&mut stream).unwrap().is_none(), "connection should close");
    handle.shutdown();
}

#[test]
fn token_bucket_sheds_burst_with_retry_hint() {
    let config =
        ServerConfig { tenant_rate_per_sec: 0.5, tenant_burst: 2.0, ..ServerConfig::default() };
    let handle = start_server(config);
    let mut client = Client::connect(handle.addr()).unwrap();
    client.register("bursty", TRIPLE).unwrap();

    // The burst allows two launches; the third must be shed with a
    // positive retry-after hint derived from the refill rate.
    for _ in 0..2 {
        match client.launch(triple_spec("bursty", 64)).unwrap() {
            Response::Launched { .. } => {}
            other => panic!("expected Launched within burst, got {other:?}"),
        }
    }
    match client.launch(triple_spec("bursty", 64)).unwrap() {
        Response::Overloaded { retry_after_ms } => {
            assert!(retry_after_ms > 0, "hint must be positive");
            assert!(retry_after_ms <= 60_000, "hint must be clamped");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    let stats = client.stats("bursty").unwrap();
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.shed, 1);

    // A *different* tenant is unaffected by the noisy one's bucket.
    let mut other = Client::connect(handle.addr()).unwrap();
    other.register("quiet", AFFINE).unwrap();
    let resp = other
        .launch(LaunchSpec {
            tenant: "quiet".into(),
            kernel: "affine".into(),
            grid: [1, 1, 1],
            block: [32, 1, 1],
            deadline_ms: 0,
            buffers: vec![WireBuffer { bytes: vec![0; 128], read_back: true }],
            params: vec![
                WireParam::Buffer(0),
                WireParam::U32(1),
                WireParam::U32(0),
                WireParam::U32(32),
            ],
        })
        .unwrap();
    assert!(matches!(resp, Response::Launched { .. }), "quiet tenant shed: {resp:?}");
    handle.shutdown();
}

#[test]
fn saturated_capacity_sheds_instead_of_queueing() {
    // One admission slot, no retries, no degradation: a spin launch
    // occupies the whole gate until its deadline kills it, and every
    // launch arriving meanwhile must be answered Overloaded quickly.
    let config = ServerConfig {
        admission_capacity: Some(1),
        max_retries: 0,
        degrade_to_scalar: false,
        shed_retry_ms: 7,
        ..ServerConfig::default()
    };
    let handle = start_server(config);
    let addr = handle.addr();

    let mut setup = Client::connect(addr).unwrap();
    setup.register("hog", SPIN).unwrap();
    setup.register("victim", TRIPLE).unwrap();

    let hog = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        // The spin launch itself competes for the single slot; retry
        // until admitted so the test deterministically saturates it.
        loop {
            let resp = client
                .launch(LaunchSpec {
                    tenant: "hog".into(),
                    kernel: "spin".into(),
                    grid: [1, 1, 1],
                    block: [8, 1, 1],
                    deadline_ms: 1_500,
                    buffers: vec![],
                    params: vec![WireParam::U32(0)],
                })
                .unwrap();
            if !matches!(resp, Response::Overloaded { .. }) {
                return resp;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    });

    // Wait until the hog is actually in flight (admitted past the gate)
    // before probing, so a shed observation is deterministic.
    let t0 = Instant::now();
    while setup.stats("hog").unwrap().admitted == 0 {
        assert!(t0.elapsed() < Duration::from_secs(10), "hog never got admitted");
        std::thread::sleep(Duration::from_millis(5));
    }

    // While the hog holds the only slot, the victim's launch must be
    // answered Overloaded quickly (no queueing behind the spin).
    let mut client = Client::connect(addr).unwrap();
    let sent = Instant::now();
    let observed_shed = match client.launch(triple_spec("victim", 64)).unwrap() {
        Response::Overloaded { retry_after_ms } => Some((retry_after_ms, sent.elapsed())),
        Response::Launched { .. } => None,
        other => panic!("unexpected response: {other:?}"),
    };
    let (retry_after_ms, latency) = observed_shed.expect("never saw Overloaded under saturation");
    assert_eq!(retry_after_ms, 7, "capacity sheds use the configured hint");
    assert!(latency < Duration::from_millis(500), "shed took {latency:?}, expected fast refusal");

    // The hog's spin launch ends with a typed, retryable deadline error
    // after exactly one attempt (retries disabled).
    let (retryable, attempts) = expect_error(&hog.join().unwrap(), "deadline");
    assert!(retryable, "deadline errors are transient and marked retryable");
    assert_eq!(attempts, 1);

    // Once the slot frees, the victim is served again.
    let t0 = Instant::now();
    loop {
        match client.launch(triple_spec("victim", 64)).unwrap() {
            Response::Launched { .. } => break,
            Response::Overloaded { .. } if t0.elapsed() < Duration::from_secs(10) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("service did not recover after saturation: {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn exec_quota_is_enforced_per_tenant() {
    let config = ServerConfig { tenant_quota_exec_ns: Some(1), ..ServerConfig::default() };
    let handle = start_server(config);
    let mut client = Client::connect(handle.addr()).unwrap();
    client.register("metered", TRIPLE).unwrap();

    // The first launch is under quota; any real execution overshoots a
    // 1 ns budget, so the second is refused with a typed quota error.
    assert!(matches!(
        client.launch(triple_spec("metered", 64)).unwrap(),
        Response::Launched { .. }
    ));
    let (retryable, _) = expect_error(&client.launch(triple_spec("metered", 64)).unwrap(), "quota");
    assert!(!retryable, "quota exhaustion is not transient");

    // Another tenant's budget is untouched.
    let mut other = Client::connect(handle.addr()).unwrap();
    other.register("fresh", AFFINE).unwrap();
    let resp = other
        .launch(LaunchSpec {
            tenant: "fresh".into(),
            kernel: "affine".into(),
            grid: [1, 1, 1],
            block: [32, 1, 1],
            deadline_ms: 0,
            buffers: vec![WireBuffer { bytes: vec![0; 128], read_back: true }],
            params: vec![
                WireParam::Buffer(0),
                WireParam::U32(2),
                WireParam::U32(1),
                WireParam::U32(32),
            ],
        })
        .unwrap();
    assert!(matches!(resp, Response::Launched { .. }), "fresh tenant refused: {resp:?}");
    handle.shutdown();
}

#[test]
fn stats_for_unknown_tenant_are_zero() {
    let handle = start_server(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats("never-seen").unwrap();
    assert_eq!(
        (stats.requests, stats.admitted, stats.shed, stats.completed, stats.failed),
        (0, 0, 0, 0, 0)
    );
    handle.shutdown();
}
