//! Two host threads sharing one `Device`, launching different kernels
//! concurrently: results, per-launch stats and the shared translation
//! cache must all stay coherent.

use dpvk::core::{Device, ExecConfig, ParamValue};
use dpvk::vm::MachineModel;

const MODULE: &str = r#"
.kernel triple (.param .u64 data, .param .u32 n) {
  .reg .u32 %r<3>;
  .reg .u64 %rd<2>;
  .reg .pred %p<1>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r2, [%rd1];
  mul.lo.u32 %r2, %r2, 3;
  st.global.u32 [%rd1], %r2;
done:
  ret;
}

.kernel xorshift (.param .u64 data, .param .u32 n) {
  .reg .u32 %r<4>;
  .reg .u64 %rd<2>;
  .reg .pred %p<1>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r2, [%rd1];
  shl.u32 %r3, %r2, 1;
  xor.b32 %r2, %r2, %r3;
  st.global.u32 [%rd1], %r2;
done:
  ret;
}
"#;

#[test]
fn concurrent_launches_of_different_kernels_share_one_device() {
    let dev = Device::new(MachineModel::sandybridge_sse(), 16 << 20);
    dev.register_source(MODULE).unwrap();
    let n = 1024u32;

    let triple_in: Vec<u32> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();
    let xs_in: Vec<u32> = (0..n).map(|i| i.wrapping_add(17)).collect();
    let pt = dev.malloc(n as usize * 4).unwrap();
    let px = dev.malloc(n as usize * 4).unwrap();
    dev.copy_u32_htod(pt, &triple_in).unwrap();
    dev.copy_u32_htod(px, &xs_in).unwrap();

    let (triple_stats, xs_stats) = std::thread::scope(|s| {
        let t = s.spawn(|| {
            let mut last = None;
            for _ in 0..4 {
                last = Some(
                    dev.launch(
                        "triple",
                        [n / 64, 1, 1],
                        [64, 1, 1],
                        &[ParamValue::Ptr(pt), ParamValue::U32(n)],
                        &ExecConfig::dynamic(4).with_workers(2),
                    )
                    .unwrap(),
                );
            }
            last.unwrap()
        });
        let x = s.spawn(|| {
            let mut last = None;
            for _ in 0..4 {
                last = Some(
                    dev.launch(
                        "xorshift",
                        [n / 32, 1, 1],
                        [32, 1, 1],
                        &[ParamValue::Ptr(px), ParamValue::U32(n)],
                        &ExecConfig::static_tie(4).with_workers(2),
                    )
                    .unwrap(),
                );
            }
            last.unwrap()
        });
        (t.join().unwrap(), x.join().unwrap())
    });

    // Each buffer saw exactly its own kernel, four times.
    let triple_out = dev.copy_u32_dtoh(pt, n as usize).unwrap();
    let xs_out = dev.copy_u32_dtoh(px, n as usize).unwrap();
    for i in 0..n as usize {
        let mut t = triple_in[i];
        let mut x = xs_in[i];
        for _ in 0..4 {
            t = t.wrapping_mul(3);
            x ^= x << 1;
        }
        assert_eq!(triple_out[i], t, "triple[{i}]");
        assert_eq!(xs_out[i], x, "xorshift[{i}]");
    }

    // Per-launch stats are independent: each reflects its own grid's
    // retired instruction count, not a blend of both launches.
    assert_ne!(triple_stats.exec.instructions, 0);
    assert_ne!(xs_stats.exec.instructions, 0);
    assert_eq!(triple_stats.exec.downgraded_warps, 0);
    assert_eq!(xs_stats.exec.downgraded_warps, 0);

    // The shared cache compiled each (kernel, width, variant) once
    // despite eight launches racing over it.
    let cache = dev.cache_stats();
    assert_eq!(cache.spec_failures, 0);
    assert!(cache.hits >= cache.misses, "cache stats: {cache:?}");
}

#[test]
fn async_launches_from_one_thread_overlap_on_the_pool() {
    // The spawn-per-launch design needed one host thread per concurrent
    // launch; the persistent pool lets a single thread keep several
    // launches in flight through handles. Unordered launches may overlap
    // arbitrarily, so each gets its own buffer.
    let dev = Device::new(MachineModel::sandybridge_sse(), 16 << 20);
    dev.register_source(MODULE).unwrap();
    let n = 1024u32;

    let triple_in: Vec<u32> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();
    let xs_in: Vec<u32> = (0..n).map(|i| i.wrapping_add(17)).collect();

    // Submit everything before waiting on anything.
    let mut launches = Vec::new();
    for _ in 0..4 {
        let pt = dev.malloc(n as usize * 4).unwrap();
        dev.copy_u32_htod(pt, &triple_in).unwrap();
        let ht = dev
            .launch_async(
                "triple",
                [n / 64, 1, 1],
                [64, 1, 1],
                &[ParamValue::Ptr(pt), ParamValue::U32(n)],
                &ExecConfig::dynamic(4).with_workers(2),
            )
            .unwrap();
        launches.push(("triple", pt, ht));

        let px = dev.malloc(n as usize * 4).unwrap();
        dev.copy_u32_htod(px, &xs_in).unwrap();
        let hx = dev
            .launch_async(
                "xorshift",
                [n / 32, 1, 1],
                [32, 1, 1],
                &[ParamValue::Ptr(px), ParamValue::U32(n)],
                &ExecConfig::static_tie(4).with_workers(2),
            )
            .unwrap();
        launches.push(("xorshift", px, hx));
    }

    for (kernel, ptr, handle) in &launches {
        let stats = handle.wait().unwrap();
        assert!(handle.is_finished());
        assert_eq!(handle.kernel(), *kernel);
        assert_ne!(stats.exec.instructions, 0, "{kernel} stats empty");
        assert_eq!(stats.exec.downgraded_warps, 0);

        // Each buffer saw exactly one application of exactly its kernel,
        // however the eight launches interleaved on the pool.
        let out = dev.copy_u32_dtoh(*ptr, n as usize).unwrap();
        for i in 0..n as usize {
            let want = match *kernel {
                "triple" => triple_in[i].wrapping_mul(3),
                _ => xs_in[i] ^ (xs_in[i] << 1),
            };
            assert_eq!(out[i], want, "{kernel}[{i}]");
        }
    }
    dev.synchronize();

    let cache = dev.cache_stats();
    assert_eq!(cache.spec_failures, 0);
    assert!(cache.hits >= cache.misses, "cache stats: {cache:?}");
}

#[test]
fn dropped_handles_detach_without_cancelling_or_wedging_the_pool() {
    // Regression guard for the serving layer: a client that fires
    // launches and walks away (its handles dropped un-waited) must not
    // cancel the work, lose its memory effects, or wedge the pool for
    // the next client.
    let dev = Device::new(MachineModel::sandybridge_sse(), 16 << 20);
    dev.register_source(MODULE).unwrap();
    let n = 1024u32;

    let input: Vec<u32> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();
    let mut buffers = Vec::new();
    for _ in 0..8 {
        let ptr = dev.malloc(n as usize * 4).unwrap();
        dev.copy_u32_htod(ptr, &input).unwrap();
        let handle = dev
            .launch_async(
                "triple",
                [n / 64, 1, 1],
                [64, 1, 1],
                &[ParamValue::Ptr(ptr), ParamValue::U32(n)],
                &ExecConfig::dynamic(4).with_workers(2),
            )
            .unwrap();
        buffers.push(ptr);
        drop(handle); // Detach: the launch must keep running.
    }

    // Every detached launch still completes and its memory effects land.
    dev.synchronize();
    for (b, &ptr) in buffers.iter().enumerate() {
        let out = dev.copy_u32_dtoh(ptr, n as usize).unwrap();
        for i in 0..n as usize {
            assert_eq!(out[i], input[i].wrapping_mul(3), "buffer {b}, element {i}");
        }
    }

    // The pool is not wedged: a fresh blocking launch on the same device
    // runs to completion with clean stats.
    let ptr = dev.malloc(n as usize * 4).unwrap();
    dev.copy_u32_htod(ptr, &input).unwrap();
    let stats = dev
        .launch(
            "triple",
            [n / 64, 1, 1],
            [64, 1, 1],
            &[ParamValue::Ptr(ptr), ParamValue::U32(n)],
            &ExecConfig::dynamic(4),
        )
        .unwrap();
    assert_ne!(stats.exec.instructions, 0);
    assert_eq!(stats.exec.cancelled_warps, 0, "detached handles must not cancel work");
    let out = dev.copy_u32_dtoh(ptr, n as usize).unwrap();
    assert_eq!(out[1], input[1].wrapping_mul(3));
}
