//! Golden-digest helpers shared by the integration suites
//! (`properties.rs` pins modeled semantics with them; the fault-injected
//! serving tests reuse them to prove tenant isolation bit-for-bit).
//!
//! Each test binary compiles its own copy of this module, so not every
//! helper is used everywhere.
#![allow(dead_code)]

use dpvk::core::LaunchStats;

/// FNV-1a over 64-bit words: stable, dependency-free, order-sensitive.
pub fn fold(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x100_0000_01b3);
}

/// Fold every modeled-execution field of a launch's stats into `h`.
pub fn digest_stats(h: &mut u64, s: &LaunchStats) {
    let e = &s.exec;
    for v in [
        e.cycles_body,
        e.cycles_yield,
        e.cycles_manager,
        e.instructions,
        e.flops,
        e.loads,
        e.stores,
        e.restore_loads,
        e.spill_stores,
        e.warp_entries,
        e.thread_entries,
        e.spill_bytes,
        e.restore_bytes,
        e.downgraded_warps,
        e.cancelled_warps,
    ] {
        fold(h, v);
    }
    fold(h, s.warp_hist.len() as u64);
    for &v in &s.warp_hist {
        fold(h, v);
    }
}

/// Digest a byte buffer (kernel output) into a single word.
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325;
    fold(&mut h, bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        fold(&mut h, u64::from_le_bytes(word));
    }
    h
}
