//! Fault-injection acceptance suite for the hardened execution manager.
//!
//! Runs only with `--features fault-inject`; each test installs a
//! [`dpvk::core::faults::FaultPlan`] (which also serializes the tests
//! against each other through a process-wide gate) and drives one
//! recovery path: panic containment, deadline kill, scalar downgrade,
//! fault provenance, and host cancellation.

#![cfg(feature = "fault-inject")]

mod common;

use std::time::{Duration, Instant};

use dpvk::core::faults::{install, FaultPlan, SlowWarps};
use dpvk::core::{CancelToken, CoreError, Device, Engine, ExecConfig, ParamValue};
use dpvk::vm::{MachineModel, VmError};

/// Both guest engines must survive every recovery path identically.
const ENGINES: [Engine; 2] = [Engine::Bytecode, Engine::Tree];

/// In-place `data[i] *= 3` over `n` u32 elements.
const TRIPLE: &str = r#"
.kernel triple (.param .u64 data, .param .u32 n) {
  .reg .u32 %r<3>;
  .reg .u64 %rd<2>;
  .reg .pred %p<1>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r2, [%rd1];
  mul.lo.u32 %r2, %r2, 3;
  st.global.u32 [%rd1], %r2;
done:
  ret;
}
"#;

/// A kernel that never terminates: the only block branches to itself.
const SPIN: &str = r#"
.kernel spin (.param .u32 n) {
  .reg .u32 %r<1>;
entry:
  bra entry;
}
"#;

fn device(src: &str) -> Device {
    // No persistent cache: fault plans target the compile path (e.g.
    // `fail_specialize_width`), which a warm disk artifact would bypass.
    let dev = Device::with_persist(MachineModel::sandybridge_sse(), 4 << 20, None);
    dev.register_source(src).unwrap();
    dev
}

/// Upload `0..n`, run `triple` with `config`, return the buffer.
fn launch_triple(
    dev: &Device,
    grid: u32,
    block: u32,
    n: u32,
    config: &ExecConfig,
) -> (Result<dpvk::core::LaunchStats, CoreError>, Vec<u32>) {
    let ptr = dev.malloc(n as usize * 4).unwrap();
    let input: Vec<u32> = (0..n).collect();
    dev.copy_u32_htod(ptr, &input).unwrap();
    let result = dev.launch(
        "triple",
        [grid, 1, 1],
        [block, 1, 1],
        &[ParamValue::Ptr(ptr), ParamValue::U32(n)],
        config,
    );
    let out = dev.copy_u32_dtoh(ptr, n as usize).unwrap();
    (result, out)
}

#[test]
fn injected_panic_is_contained_and_prior_ctas_complete() {
    // One worker walks CTAs in order, so a panic at the LAST CTA means
    // every earlier CTA has already finished: containment is observable
    // as correct output for CTAs 0..3 and untouched output for CTA 3.
    let guard = install(FaultPlan { panic_at_cta: Some(3), ..Default::default() });
    let dev = device(TRIPLE);

    // The injected panic would otherwise spam the test log through the
    // default panic hook; silence it just for the faulting launch. The
    // injection gate serializes this suite, so no other test's panic
    // message can be swallowed by the no-op hook.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (result, out) = launch_triple(&dev, 4, 8, 32, &ExecConfig::dynamic(4).with_workers(1));
    std::panic::set_hook(prev_hook);

    match result {
        Err(CoreError::WorkerPanic { worker, cta, payload }) => {
            assert_eq!(worker, 0);
            assert_eq!(cta, 3);
            assert!(payload.contains("injected fault"), "payload: {payload}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    for (i, &v) in out.iter().enumerate() {
        if i < 24 {
            assert_eq!(v, (i as u32) * 3, "CTA {} output clobbered", i / 8);
        } else {
            assert_eq!(v, i as u32, "panicked CTA should not have written");
        }
    }

    // The device (cache, heap, global memory) survives the contained
    // panic: a clean relaunch on the same device succeeds.
    drop(guard);
    let (result, out) = launch_triple(&dev, 4, 8, 32, &ExecConfig::dynamic(4).with_workers(1));
    result.unwrap();
    assert!(out.iter().enumerate().all(|(i, &v)| v == (i as u32) * 3));
}

#[test]
fn panic_in_one_async_launch_fails_only_its_handle() {
    // The fault plan keys on the flat CTA index: the victim's 4-CTA grid
    // reaches CTA 3 and panics; the sibling's 3-CTA grid (flat CTAs
    // 0..=2) never does. Both run concurrently on the device's
    // persistent pool — the panic must fail exactly one handle, leave
    // the sibling's results intact, and leave the pool serviceable.
    let guard = install(FaultPlan { panic_at_cta: Some(3), ..Default::default() });
    let dev = device(TRIPLE);
    let config = ExecConfig::dynamic(4).with_workers(1);

    let n_victim = 32u32;
    let n_sib = 24u32;
    let pv = dev.malloc(n_victim as usize * 4).unwrap();
    let ps = dev.malloc(n_sib as usize * 4).unwrap();
    dev.copy_u32_htod(pv, &(0..n_victim).collect::<Vec<_>>()).unwrap();
    dev.copy_u32_htod(ps, &(0..n_sib).collect::<Vec<_>>()).unwrap();

    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let victim = dev
        .launch_async(
            "triple",
            [4, 1, 1],
            [8, 1, 1],
            &[ParamValue::Ptr(pv), ParamValue::U32(n_victim)],
            &config,
        )
        .unwrap();
    let sibling = dev
        .launch_async(
            "triple",
            [3, 1, 1],
            [8, 1, 1],
            &[ParamValue::Ptr(ps), ParamValue::U32(n_sib)],
            &config,
        )
        .unwrap();
    let victim_result = victim.wait();
    std::panic::set_hook(prev_hook);

    match victim_result {
        Err(CoreError::WorkerPanic { cta, payload, .. }) => {
            assert_eq!(cta, 3);
            assert!(payload.contains("injected fault"), "payload: {payload}");
        }
        other => panic!("expected WorkerPanic on the victim handle, got {other:?}"),
    }

    // Only the victim's handle failed; the sibling completed correctly.
    sibling.wait().expect("sibling launch must be unaffected by the panic");
    let out = dev.copy_u32_dtoh(ps, n_sib as usize).unwrap();
    assert!(
        out.iter().enumerate().all(|(i, &v)| v == (i as u32) * 3),
        "sibling clobbered: {out:?}"
    );

    // The pool's worker threads survived the contained panic: with the
    // plan uninstalled, the same device runs the victim grid cleanly.
    drop(guard);
    dev.copy_u32_htod(pv, &(0..n_victim).collect::<Vec<_>>()).unwrap();
    dev.launch(
        "triple",
        [4, 1, 1],
        [8, 1, 1],
        &[ParamValue::Ptr(pv), ParamValue::U32(n_victim)],
        &config,
    )
    .unwrap();
    let out = dev.copy_u32_dtoh(pv, n_victim as usize).unwrap();
    assert!(out.iter().enumerate().all(|(i, &v)| v == (i as u32) * 3));
    dev.synchronize();
}

#[test]
fn deadline_kills_a_runaway_kernel_within_twice_the_budget() {
    // Hold the gate: this test reads global trace counters.
    let _guard = install(FaultPlan::default());
    dpvk::trace::enable();
    dpvk::trace::reset();

    let dev = device(SPIN);
    let budget = Duration::from_millis(250);
    for engine in ENGINES {
        let start = Instant::now();
        let err = dev
            .launch_with_deadline(
                "spin",
                [2, 1, 1],
                [8, 1, 1],
                &[ParamValue::U32(0)],
                &ExecConfig::dynamic(4).with_workers(2).with_engine(engine),
                budget,
            )
            .unwrap_err();
        let elapsed = start.elapsed();

        assert!(err.is_deadline(), "[{engine:?}] expected deadline fault, got {err:?}");
        let msg = err.to_string();
        assert!(msg.contains("spin") && msg.contains("CTA"), "missing provenance: {msg}");
        assert!(
            elapsed < budget * 2,
            "[{engine:?}] runaway kernel outlived 2x budget: {elapsed:?} vs {budget:?}"
        );
    }

    // The warps that were interrupted mid-interpretation are visible in
    // the trace as cancelled warps, and each engine's dispatch counter
    // saw its launch.
    let report = dpvk::trace::TraceReport::capture();
    dpvk::trace::disable();
    assert!(report.counter("cancelled_warps") >= 1, "counters: {:?}", report.counters);
    assert!(report.counter("faults") >= 2);
    assert!(report.counter("warps_bytecode") >= 1, "counters: {:?}", report.counters);
    assert!(report.counter("warps_tree") >= 1, "counters: {:?}", report.counters);
}

#[test]
fn failed_specialization_downgrades_to_scalar_and_is_counted() {
    let _guard = install(FaultPlan { fail_specialize_width: Some(4), ..Default::default() });
    dpvk::trace::enable();
    dpvk::trace::reset();

    let dev = device(TRIPLE);
    let (result, out) = launch_triple(&dev, 4, 16, 64, &ExecConfig::dynamic(4).with_workers(1));
    let stats = result.expect("downgrade must rescue the launch, not fail it");

    // Degraded, not wrong: every element is still tripled.
    assert!(out.iter().enumerate().all(|(i, &v)| v == (i as u32) * 3));

    // The downgrade is visible at every level: cache stats, launch
    // stats, trace counters, and the serialized trace events.
    let cache = dev.cache_stats();
    assert!(cache.spec_failures >= 1, "cache stats: {cache:?}");
    assert!(cache.downgrades >= 1, "cache stats: {cache:?}");
    assert!(stats.exec.downgraded_warps >= 1, "exec stats: {:?}", stats.exec);

    let report = dpvk::trace::TraceReport::capture();
    dpvk::trace::disable();
    assert!(report.counter("spec_failures") >= 1);
    assert!(report.counter("downgraded_warps") >= 1);
    let json = report.to_json();
    assert!(json.contains("\"type\":\"downgrade\""), "trace json: {json}");
    assert!(json.contains("injected fault: forced verify failure"), "trace json: {json}");
}

#[test]
fn injected_vm_fault_carries_full_provenance() {
    let _guard = install(FaultPlan { oob_at_cta: Some(1), ..Default::default() });
    let dev = device(TRIPLE);
    for engine in ENGINES {
        let config = ExecConfig::dynamic(4).with_workers(1).with_engine(engine);
        let (result, _) = launch_triple(&dev, 2, 4, 8, &config);

        match result {
            Err(CoreError::Fault { context, source }) => {
                assert_eq!(context.kernel, "triple");
                assert_eq!(context.cta, 1);
                assert!(!context.thread_ids.is_empty(), "warp thread ids missing");
                assert!(matches!(source, VmError::OutOfBounds { .. }), "source: {source:?}");
                let msg = CoreError::Fault { context, source }.to_string();
                assert!(
                    msg.contains("kernel `triple`") && msg.contains("CTA 1"),
                    "display lacks provenance: {msg}"
                );
            }
            other => panic!("[{engine:?}] expected Fault with provenance, got {other:?}"),
        }
    }
}

#[test]
fn host_cancellation_stops_slow_warps_early() {
    // 64 CTAs, every warp sleeps 15ms: a full run on 2 workers needs
    // ~480ms. Cancel after 60ms and require the launch to return well
    // before the uncancelled finish line.
    let _guard = install(FaultPlan {
        slow_warps: Some(SlowWarps {
            seed: 0x5eed,
            fraction: 1.0,
            delay: Duration::from_millis(15),
        }),
        ..Default::default()
    });
    let dev = device(TRIPLE);
    let n = 64u32 * 4;
    let ptr = dev.malloc(n as usize * 4).unwrap();
    dev.copy_u32_htod(ptr, &(0..n).collect::<Vec<_>>()).unwrap();

    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            token.cancel();
        })
    };
    let start = Instant::now();
    let err = dev
        .launch_cancellable(
            "triple",
            [64, 1, 1],
            [4, 1, 1],
            &[ParamValue::Ptr(ptr), ParamValue::U32(n)],
            &ExecConfig::dynamic(4).with_workers(2),
            &token,
        )
        .unwrap_err();
    let elapsed = start.elapsed();
    canceller.join().unwrap();

    assert!(err.is_cancelled(), "expected cancellation, got {err:?}");
    assert!(err.to_string().contains("triple"), "missing provenance: {err}");
    assert!(
        elapsed < Duration::from_millis(400),
        "cancellation should beat the ~480ms uncancelled runtime: {elapsed:?}"
    );
}

#[test]
fn eviction_under_pressure_never_touches_a_buffer_in_flight() {
    // Slow every warp so the launch holds its buffer in flight for
    // hundreds of milliseconds while the host thread drives the heap
    // through exhaustion and forced eviction. Eviction only consumes
    // *freed* idle blocks, so the launch's live buffer must come out
    // bit-exact no matter how much churn coalesces around it.
    let _guard = install(FaultPlan {
        slow_warps: Some(SlowWarps {
            seed: 0xE51C,
            fraction: 1.0,
            delay: Duration::from_millis(10),
        }),
        ..Default::default()
    });
    let dev = Device::with_persist(MachineModel::sandybridge_sse(), 1 << 18, None);
    dev.register_source(TRIPLE).unwrap();

    let n = 16u32 * 8;
    let ptr = dev.malloc(n as usize * 4).unwrap();
    dev.copy_u32_htod(ptr, &(0..n).collect::<Vec<_>>()).unwrap();
    let handle = dev
        .launch_async(
            "triple",
            [16, 1, 1],
            [8, 1, 1],
            &[ParamValue::Ptr(ptr), ParamValue::U32(n)],
            &ExecConfig::dynamic(4).with_workers(1),
        )
        .unwrap();

    // While the kernel runs: fill the heap, free everything, then
    // demand blocks of a class no free list holds — each round forces
    // the allocator to evict and coalesce idle corpses.
    for _round in 0..3 {
        let mut hog = Vec::new();
        while let Ok(p) = dev.malloc(8 << 10) {
            hog.push(p);
        }
        assert!(!hog.is_empty(), "pressure loop never allocated");
        for p in hog {
            dev.free(p).unwrap();
        }
        let big = dev.malloc(16 << 10).expect("eviction must rescue the large request");
        dev.free(big).unwrap();
    }
    let stats = dev.memory_stats();
    assert!(stats.evicted_bytes > 0, "pressure loop never forced eviction: {stats:?}");

    handle.wait().expect("launch must survive concurrent eviction");
    let out = dev.copy_u32_dtoh(ptr, n as usize).unwrap();
    for (i, &v) in out.iter().enumerate() {
        assert_eq!(v, 3 * i as u32, "element {i}: in-flight buffer corrupted by eviction");
    }
    dev.free(ptr).unwrap();
    assert_eq!(dev.heap_used(), 0);
}

/// `data[i] *= 2` — a second kernel so the serving test's bystander
/// tenant owns its own entry point.
const DOUBLE: &str = r#"
.kernel dbl (.param .u64 data, .param .u32 n) {
  .reg .u32 %r<3>;
  .reg .u64 %rd<2>;
  .reg .pred %p<1>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r2, [%rd1];
  mul.lo.u32 %r2, %r2, 2;
  st.global.u32 [%rd1], %r2;
done:
  ret;
}
"#;

#[test]
fn server_retries_injected_panic_and_leaves_other_tenants_bit_identical() {
    use dpvk::server::{Client, LaunchSpec, Response, Server, ServerConfig, WireBuffer, WireParam};

    // The plan keys on the flat CTA index: tenant `faulty` launches an
    // 8-CTA grid whose CTA 7 panics exactly once (the budget), while
    // tenant `bystander`'s 4-CTA grid can never reach CTA 7. The server
    // must retry the panicked launch transparently and the bystander's
    // outputs must be bit-identical to its fault-free runs.
    let _guard =
        install(FaultPlan { panic_at_cta: Some(7), panic_budget: Some(1), ..Default::default() });
    dpvk::trace::enable();
    dpvk::trace::reset();

    let server =
        Server::bind(MachineModel::sandybridge_sse(), 8 << 20, ServerConfig::default()).unwrap();
    let handle = server.start().unwrap();
    let addr = handle.addr();

    let mut faulty = Client::connect(addr).unwrap();
    let mut bystander = Client::connect(addr).unwrap();
    assert_eq!(faulty.register("faulty", TRIPLE).unwrap(), Response::Registered);
    assert_eq!(bystander.register("bystander", DOUBLE).unwrap(), Response::Registered);

    let bystander_spec = || LaunchSpec {
        tenant: "bystander".into(),
        kernel: "dbl".into(),
        grid: [4, 1, 1],
        block: [8, 1, 1],
        deadline_ms: 0,
        buffers: vec![WireBuffer {
            bytes: (0u32..32).flat_map(u32::to_le_bytes).collect(),
            read_back: true,
        }],
        params: vec![WireParam::Buffer(0), WireParam::U32(32)],
    };

    // Reference digest: the plan cannot trip on a 4-CTA grid, so this
    // run *is* the fault-free behavior.
    let reference = match bystander.launch(bystander_spec()).unwrap() {
        Response::Launched { outputs, .. } => {
            let out = &outputs[0];
            assert_eq!(u32::from_le_bytes(out[12..16].try_into().unwrap()), 6);
            common::digest_bytes(out)
        }
        other => panic!("reference launch failed: {other:?}"),
    };

    // The injected panic inside the server's pool worker would spam the
    // log through the default hook; silence it for the serving window.
    // The injection gate serializes this suite, so no other test's
    // panic message is swallowed.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let bystander_thread = std::thread::spawn(move || {
        let mut digests = Vec::new();
        for _ in 0..5 {
            match bystander.launch(bystander_spec()).unwrap() {
                Response::Launched { attempts, degraded, outputs } => {
                    assert_eq!(attempts, 1, "bystander must never need retries");
                    assert!(!degraded);
                    digests.push(common::digest_bytes(&outputs[0]));
                }
                other => panic!("bystander shed or failed: {other:?}"),
            }
        }
        digests
    });

    let faulty_resp = faulty
        .launch(LaunchSpec {
            tenant: "faulty".into(),
            kernel: "triple".into(),
            grid: [8, 1, 1],
            block: [8, 1, 1],
            deadline_ms: 0,
            buffers: vec![WireBuffer {
                bytes: (0u32..64).flat_map(u32::to_le_bytes).collect(),
                read_back: true,
            }],
            params: vec![WireParam::Buffer(0), WireParam::U32(64)],
        })
        .unwrap();
    let digests = bystander_thread.join().unwrap();
    std::panic::set_hook(prev_hook);

    // The panicked first attempt was retried with re-uploaded inputs:
    // one retry, correct (not double-applied) output, no degradation.
    match faulty_resp {
        Response::Launched { attempts, degraded, outputs } => {
            assert_eq!(attempts, 2, "exactly one retry after the budgeted panic");
            assert!(!degraded, "retry succeeded before the scalar rung");
            let out: Vec<u32> = outputs[0]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, 3 * i as u32, "element {i} after retry");
            }
        }
        other => panic!("expected retried Launched, got {other:?}"),
    }

    // Bit-identical bystander runs while the fault was tripping next door.
    for (i, &d) in digests.iter().enumerate() {
        assert_eq!(d, reference, "bystander run {i} diverged from fault-free digest");
    }

    // The retry is visible end-to-end: per-tenant wire stats, the global
    // trace counters, and the report's per-tenant records.
    let stats = faulty.stats("faulty").unwrap();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
    let bystats = faulty.stats("bystander").unwrap();
    assert_eq!(bystats.retries, 0);
    assert_eq!(bystats.completed, 6);

    let report = dpvk::trace::TraceReport::capture();
    dpvk::trace::disable();
    assert!(report.counter("server_retries") >= 1, "counters: {:?}", report.counters);
    assert!(report.counter("server_completed") >= 7, "counters: {:?}", report.counters);
    assert!(report.counter("faults") >= 1, "the panicked attempt must be traced as a fault");
    let faulty_rec = report
        .tenants
        .iter()
        .find(|t| t.tenant == "faulty")
        .expect("per-tenant record missing from report");
    assert_eq!(faulty_rec.retries, 1);
    assert_eq!(faulty_rec.completed, 1);

    handle.shutdown();
}
