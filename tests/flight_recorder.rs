//! Integration tests of the flight recorder: per-launch span timelines
//! with Chrome-trace export, the µop-level bytecode profiler, and the
//! delta-capable metrics snapshot — plus the dark-by-default guarantee
//! that none of it records anything while tracing is off.

use std::sync::Mutex;

use dpvk::core::{Device, ExecConfig, LaunchStats, ParamValue};
use dpvk::trace::timeline::SpanKind;
use dpvk::trace::{self, profile, timeline, Counter};
use dpvk::vm::MachineModel;

/// The tracer is process-global; tests in this binary serialize on this
/// lock and reset state around themselves.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Collatz step counts: data-dependent trip counts, so warps diverge,
/// re-form at several widths, and exercise every µop path the profiler
/// attributes (loads, stores, fused compare-branches, terminators).
const DIVERGENT: &str = r#"
.kernel collatz_steps (.param .u64 seeds, .param .u64 out, .param .u32 n) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<4>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  shl.u32 %r2, %r0, 2;
  cvt.u64.u32 %rd0, %r2;
  ld.param.u64 %rd1, [seeds];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r3, [%rd1];
  mov.u32 %r4, 0;
loop:
  setp.le.u32 %p1, %r3, 1;
  @%p1 bra store;
  and.b32 %r5, %r3, 1;
  setp.eq.u32 %p2, %r5, 0;
  @%p2 bra even;
  mad.lo.u32 %r3, %r3, 3, 1;
  bra next;
even:
  shr.u32 %r3, %r3, 1;
next:
  add.u32 %r4, %r4, 1;
  bra loop;
store:
  ld.param.u64 %rd2, [out];
  add.u64 %rd2, %rd2, %rd0;
  st.global.u32 [%rd2], %r4;
done:
  ret;
}
"#;

fn run_divergent(config: &ExecConfig) -> LaunchStats {
    let n = 128usize;
    // No persistent cache: these tests assert on cold-compile spans
    // (Specialize/Decode), which a warm disk cache legitimately skips.
    let dev = Device::with_persist(MachineModel::sandybridge_sse(), 4 << 20, None);
    dev.register_source(DIVERGENT).unwrap();
    let seeds: Vec<u32> = (0..n as u32).map(|i| i * 7 + 1).collect();
    let ps = dev.malloc(n * 4).unwrap();
    let po = dev.malloc(n * 4).unwrap();
    dev.copy_u32_htod(ps, &seeds).unwrap();
    dev.launch(
        "collatz_steps",
        [(n as u32).div_ceil(32), 1, 1],
        [32, 1, 1],
        &[ParamValue::Ptr(ps), ParamValue::Ptr(po), ParamValue::U32(n as u32)],
        config,
    )
    .unwrap()
}

#[test]
fn timeline_records_nested_launch_spans_and_exports_chrome_json() {
    let _guard = TRACE_LOCK.lock().unwrap();

    // Chunk pickup is a shared-queue race: a fast worker can drain both
    // chunks before its peer wakes, so retry until a launch lands on two
    // distinct worker tracks (overwhelmingly the first attempt).
    let mut picked = None;
    for _ in 0..32 {
        trace::reset();
        trace::enable();
        run_divergent(&ExecConfig::dynamic(4).with_workers(2));
        let records = timeline::launch_records();
        let totals = timeline::span_totals();
        let chrome = timeline::chrome_trace();
        trace::disable();

        // Exactly one launch drew a sequence number each attempt.
        assert_eq!(records.len(), 1, "{records:?}");
        let rec = records.into_iter().next().unwrap();
        let workers: Vec<_> =
            rec.spans.iter().filter(|s| s.kind == SpanKind::Execute).map(|s| s.worker).collect();
        if workers.len() == 2 && workers[0] != workers[1] {
            picked = Some((rec, totals, chrome));
            break;
        }
    }
    trace::reset();
    let (rec, totals, chrome) = picked.expect("chunks never landed on two distinct worker tracks");
    let rec = &rec;
    assert!(rec.seq >= 1);
    assert_eq!(rec.kernel, "collatz_steps");
    assert!(!rec.spans.is_empty());
    assert!(rec.spans.iter().all(|s| s.seq == rec.seq && s.kernel == rec.kernel));

    let of = |kind: SpanKind| rec.spans.iter().filter(|s| s.kind == kind).collect::<Vec<_>>();

    // Lifecycle spans: one queue-wait, one retire, both on the stream
    // track (no worker); the retire edge is instantaneous.
    assert_eq!(of(SpanKind::QueueWait).len(), 1);
    let retire = of(SpanKind::Retire);
    assert_eq!(retire.len(), 1);
    assert!(retire[0].worker.is_none() && retire[0].dur_ns == 0);

    // Two workers → two chunks → two execute spans, each on a distinct
    // worker track, each with its coalesced gather child nested inside.
    let execs = of(SpanKind::Execute);
    assert_eq!(execs.len(), 2, "{execs:?}");
    assert!(execs.iter().all(|e| e.worker.is_some()));
    assert_ne!(execs[0].worker, execs[1].worker, "chunks ran on the same track");
    for g in of(SpanKind::Gather) {
        assert!(g.worker.is_some());
        let parent = execs.iter().find(|e| e.worker == g.worker).expect("gather without execute");
        assert!(
            g.start_ns >= parent.start_ns
                && g.start_ns + g.dur_ns <= parent.start_ns + parent.dur_ns,
            "gather span does not nest in its execute span"
        );
    }

    // Compile spans for the cold cache fill, attributed to this launch.
    assert!(!of(SpanKind::Specialize).is_empty());
    assert!(!of(SpanKind::Decode).is_empty());

    // Per-kind totals index the same data: the execute total counts both
    // chunks, and every recorded kind shows up with nonzero calls.
    let total_of = |kind: SpanKind| totals.iter().find(|t| t.kind == kind).unwrap().calls;
    assert_eq!(total_of(SpanKind::Execute), 2);
    assert_eq!(total_of(SpanKind::Retire), 1);

    // Chrome trace-event export: structurally sound JSON with complete
    // events on the worker (pid 1) and stream (pid 2) tracks plus track
    // metadata, without pulling in a JSON parser.
    assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    assert_eq!(chrome.matches('[').count(), chrome.matches(']').count());
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"ph\":\"X\"") && chrome.contains("\"ph\":\"M\""));
    assert!(chrome.contains("\"pid\":1") && chrome.contains("\"pid\":2"));
    assert!(chrome.contains("\"execute\"") && chrome.contains("\"queue_wait\""));
}

#[test]
fn uop_profiler_attributes_every_modeled_cycle_deterministically() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let config = ExecConfig::dynamic(4).with_workers(1);

    trace::reset();
    trace::enable();
    let stats_a = run_divergent(&config);
    let total = profile::total_cycles();
    let folded_a = profile::folded();
    let profiles = profile::profiles();
    let hotspots = profile::hotspots(5);
    trace::reset();

    // Exact attribution: every modeled cycle the bytecode engine charged
    // (body + yield; manager cycles are charged by the host, not by
    // µops) appears in the profile. This is the ≥95% acceptance bar met
    // exactly, not approximately.
    assert_eq!(total, stats_a.exec.cycles_body + stats_a.exec.cycles_yield);

    // Aggregation is per kernel × specialization × engine path, rows in
    // opcode order with zero rows omitted.
    assert!(!profiles.is_empty());
    for p in &profiles {
        assert_eq!(p.kernel, "collatz_steps");
        assert!(p.path == "avx2" || p.path == "portable");
        assert!(!p.rows.is_empty());
        // Every row earns its place: dynamic dispatches, or a static
        // µop-mix entry for a compiled-but-undispatched opcode.
        assert!(p.rows.iter().all(|r| r.hits > 0 || r.static_ops > 0));
        // Cycles only ever come with dispatches.
        assert!(p.rows.iter().all(|r| r.hits > 0 || r.cycles == 0));
    }
    // Divergence re-forms warps at full and partial widths; each width
    // is its own specialization entry.
    assert!(profiles.iter().any(|p| p.warp_size == 4));

    // Hotspots rank by attributed cycles.
    assert!(!hotspots.is_empty());
    assert!(hotspots.windows(2).all(|w| w[0].cycles >= w[1].cycles));
    assert!(folded_a.lines().all(|l| l.contains("collatz_steps;w")));

    // Determinism: an identical launch on a fresh device produces the
    // identical profile, line for line.
    trace::enable();
    let stats_b = run_divergent(&config);
    let folded_b = profile::folded();
    trace::disable();
    trace::reset();
    assert_eq!(stats_a, stats_b);
    assert_eq!(folded_a, folded_b);
}

#[test]
fn metrics_snapshot_delta_isolates_the_work_in_between() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let config = ExecConfig::dynamic(4).with_workers(1);

    trace::reset();
    trace::enable();
    run_divergent(&config);
    let before = trace::snapshot();
    run_divergent(&config);
    let after = trace::snapshot();
    trace::disable();
    trace::reset();

    // The delta covers exactly the second launch.
    let delta = after.delta(&before);
    assert_eq!(delta.counter(Counter::LaunchesSubmitted), 1);
    assert_eq!(delta.counter(Counter::LaunchesRetired), 1);
    // Identical launches do identical guest work, so the second launch's
    // warp entries are exactly what the first snapshot already held.
    assert_eq!(delta.counter(Counter::WarpEntries), before.counter(Counter::WarpEntries));
    assert_eq!(delta.occupancy(), before.occupancy());
    // `-` is delta with the operands swapped.
    assert_eq!(&after - &before, delta);
    // Deltas never go negative even for monotonic counters observed
    // out of order (saturating semantics).
    let reverse = before.delta(&after);
    assert_eq!(reverse.counter(Counter::LaunchesSubmitted), 0);
}

#[test]
fn disabled_recorder_stays_dark() {
    let _guard = TRACE_LOCK.lock().unwrap();
    trace::reset();
    trace::disable();

    run_divergent(&ExecConfig::dynamic(4).with_workers(2));

    assert!(timeline::spans().is_empty(), "spans recorded while disabled");
    assert!(timeline::launch_records().is_empty());
    assert!(profile::profiles().is_empty(), "µop profile recorded while disabled");
    assert_eq!(profile::total_cycles(), 0);
    let snap = trace::snapshot();
    assert!(snap.counters().all(|(_, v)| v == 0), "counters advanced while disabled");
    trace::reset();
}
