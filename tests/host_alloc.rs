//! Steady-state dispatch must be allocation-free.
//!
//! The host-side hot path — warp formation, specialization dispatch, and
//! the interpreter register file — is designed to reuse per-worker
//! scratch state, so once a launch shape is warm the number of heap
//! allocations must not scale with the number of warps executed. This
//! test measures that directly with a counting global allocator: two
//! launches identical in every respect except a param-controlled loop
//! trip count (so one executes ~16x the warps of the other) must perform
//! essentially the same number of allocations.
//!
//! The test lives alone in its own integration-test binary so the
//! counting allocator sees no interference from concurrently running
//! tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

use dpvk::core::{Device, Engine, ExecConfig, ParamValue};
use dpvk::vm::MachineModel;

/// System allocator wrapper that counts allocations while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Relaxed) {
            ALLOCS.fetch_add(1, Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Relaxed) {
            ALLOCS.fetch_add(1, Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Count allocations performed by `f`.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.store(0, Relaxed);
    ARMED.store(true, Relaxed);
    let r = f();
    ARMED.store(false, Relaxed);
    (ALLOCS.load(Relaxed), r)
}

/// One CTA of 32 threads spinning a barrier loop `n` times: every
/// iteration yields each warp at the barrier and re-forms it, so warps
/// executed scale linearly with `n` while the launch shape (CTA count,
/// thread count, memory footprint) stays fixed.
const SPIN: &str = r#"
.kernel spin (.param .u32 n) {
  .reg .u32 %r<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r1, 0;
  ld.param.u32 %r2, [n];
loop:
  bar.sync 0;
  add.u32 %r1, %r1, 1;
  setp.lt.u32 %p1, %r1, %r2;
  @%p1 bra loop;
  ret;
}
"#;

/// One test body covering both guest engines, kept in a single `#[test]`
/// so the counting allocator is never shared between concurrently
/// running tests.
#[test]
fn warm_dispatch_does_not_allocate_per_warp() {
    let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 20);
    dev.register_source(SPIN).unwrap();
    for engine in [Engine::Bytecode, Engine::Tree] {
        let config = ExecConfig::dynamic(4).with_workers(1).with_engine(engine);
        let launch = |iters: u32| {
            dev.launch("spin", [1, 1, 1], [32, 1, 1], &[ParamValue::U32(iters)], &config).unwrap()
        };

        // Warm: compile the specializations and grow every reusable
        // buffer to its steady-state capacity.
        launch(64);

        let (small_allocs, small_stats) = count_allocs(|| launch(4));
        let (big_allocs, big_stats) = count_allocs(|| launch(64));

        // Sanity: the big launch really did form many more warps.
        let warps = |s: &dpvk::core::LaunchStats| s.warp_hist.iter().sum::<u64>();
        let (small_warps, big_warps) = (warps(&small_stats), warps(&big_stats));
        assert!(
            big_warps >= small_warps + 400,
            "[{engine:?}] expected a much larger warp count: {small_warps} vs {big_warps}"
        );

        // Per-launch allocations (thread spawn, CTA arenas, stats) are
        // identical between the two launches; anything that scales with
        // the ~480 extra warps would show up here. Allow a little slack
        // for allocator-internal or platform noise, but nothing near
        // per-warp.
        let delta = big_allocs.saturating_sub(small_allocs);
        assert!(
            delta < (big_warps - small_warps) / 8,
            "[{engine:?}] warm dispatch allocated per warp: {small_allocs} allocs for \
             {small_warps} warps vs {big_allocs} allocs for {big_warps} warps"
        );
    }
}
