//! Integration tests targeting the paper's core mechanisms: yield-on-
//! diverge, warp re-formation, barrier pools and termination handling.

use dpvk::core::{Device, ExecConfig, ParamValue};
use dpvk::vm::MachineModel;

fn device(src: &str) -> Device {
    let dev = Device::new(MachineModel::sandybridge_sse(), 8 << 20);
    dev.register_source(src).unwrap();
    dev
}

#[test]
fn nested_divergence_reconverges() {
    // Two nested data-dependent branches: 4 distinct paths per warp.
    let src = r#"
.kernel nested (.param .u64 out, .param .u32 n) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<3>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  and.b32 %r2, %r0, 1;
  setp.eq.u32 %p1, %r2, 0;
  @%p1 bra outer_even;
  and.b32 %r3, %r0, 2;
  setp.eq.u32 %p2, %r3, 0;
  @%p2 bra odd_a;
  mul.lo.u32 %r4, %r0, 3;
  bra join;
odd_a:
  mul.lo.u32 %r4, %r0, 5;
  bra join;
outer_even:
  and.b32 %r3, %r0, 2;
  setp.eq.u32 %p2, %r3, 0;
  @%p2 bra even_a;
  mul.lo.u32 %r4, %r0, 7;
  bra join;
even_a:
  mul.lo.u32 %r4, %r0, 11;
join:
  add.u32 %r4, %r4, 1;
  shl.u32 %r5, %r0, 2;
  cvt.u64.u32 %rd0, %r5;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.u32 [%rd1], %r4;
done:
  ret;
}
"#;
    let expected = |i: u32| -> u32 {
        let m = match (i & 1, i & 2) {
            (1, 2) => 3,
            (1, _) => 5,
            (0, 2) => 7,
            _ => 11,
        };
        i * m + 1
    };
    for config in [ExecConfig::baseline(), ExecConfig::dynamic(4), ExecConfig::static_tie(4)] {
        let dev = device(src);
        let po = dev.malloc(64 * 4).unwrap();
        dev.launch(
            "nested",
            [1, 1, 1],
            [64, 1, 1],
            &[ParamValue::Ptr(po), ParamValue::U32(64)],
            &config,
        )
        .unwrap();
        let got = dev.copy_u32_dtoh(po, 64).unwrap();
        for (i, &v) in got.iter().enumerate() {
            assert_eq!(v, expected(i as u32), "thread {i}, config {config:?}");
        }
    }
}

#[test]
fn divergent_termination_is_handled() {
    // Half the threads exit early via a guarded ret; the rest continue.
    let src = r#"
.kernel early_exit (.param .u64 out) {
  .reg .u32 %r<6>;
  .reg .u64 %rd<3>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  shl.u32 %r1, %r0, 2;
  cvt.u64.u32 %rd0, %r1;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  mov.u32 %r2, 111;
  st.global.u32 [%rd1], %r2;
  and.b32 %r3, %r0, 1;
  setp.eq.u32 %p0, %r3, 1;
  @%p0 ret;
  mov.u32 %r2, 222;
  st.global.u32 [%rd1], %r2;
  ret;
}
"#;
    for config in [ExecConfig::baseline(), ExecConfig::dynamic(4)] {
        let dev = device(src);
        let po = dev.malloc(32 * 4).unwrap();
        dev.launch("early_exit", [1, 1, 1], [32, 1, 1], &[ParamValue::Ptr(po)], &config).unwrap();
        let got = dev.copy_u32_dtoh(po, 32).unwrap();
        for (i, &v) in got.iter().enumerate() {
            let want = if i % 2 == 1 { 111 } else { 222 };
            assert_eq!(v, want, "thread {i}, config {config:?}");
        }
    }
}

#[test]
fn barrier_after_divergence_reforms_full_warps() {
    // Threads diverge, then all meet at a barrier and exchange data via
    // shared memory: correctness requires barrier semantics across the
    // divergent region.
    let src = r#"
.kernel diverge_then_share (.param .u64 out) {
  .shared .u32 vals[32];
  .reg .u32 %r<8>;
  .reg .u64 %rd<6>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  and.b32 %r1, %r0, 3;
  setp.eq.u32 %p0, %r1, 0;
  @%p0 bra special;
  mul.lo.u32 %r2, %r0, 2;
  bra fill;
special:
  mul.lo.u32 %r2, %r0, 100;
fill:
  shl.u32 %r3, %r0, 2;
  cvt.u64.u32 %rd0, %r3;
  mov.u64 %rd1, vals;
  add.u64 %rd1, %rd1, %rd0;
  st.shared.u32 [%rd1], %r2;
  bar.sync 0;
  // read the neighbour's value (tid+1 mod 32)
  add.u32 %r4, %r0, 1;
  and.b32 %r4, %r4, 31;
  shl.u32 %r5, %r4, 2;
  cvt.u64.u32 %rd2, %r5;
  mov.u64 %rd3, vals;
  add.u64 %rd3, %rd3, %rd2;
  ld.shared.u32 %r6, [%rd3];
  ld.param.u64 %rd4, [out];
  add.u64 %rd4, %rd4, %rd0;
  st.global.u32 [%rd4], %r6;
  ret;
}
"#;
    let value = |i: u32| if i.is_multiple_of(4) { i * 100 } else { i * 2 };
    for config in [ExecConfig::baseline(), ExecConfig::dynamic(4), ExecConfig::dynamic(2)] {
        let dev = device(src);
        let po = dev.malloc(32 * 4).unwrap();
        dev.launch("diverge_then_share", [1, 1, 1], [32, 1, 1], &[ParamValue::Ptr(po)], &config)
            .unwrap();
        let got = dev.copy_u32_dtoh(po, 32).unwrap();
        for (i, &v) in got.iter().enumerate() {
            assert_eq!(v, value((i as u32 + 1) % 32), "thread {i}, config {config:?}");
        }
    }
}

#[test]
fn loop_carried_state_survives_yields() {
    // A loop with a divergent body: live loop state must round-trip
    // through spill slots at every yield.
    let src = r#"
.kernel weighted_count (.param .u64 out, .param .u32 iters) {
  .reg .u32 %r<10>;
  .reg .u64 %rd<3>;
  .reg .pred %p<3>;
entry:
  mov.u32 %r0, %tid.x;
  mov.u32 %r1, 0;               // acc
  mov.u32 %r2, %r0;             // x
  mov.u32 %r3, 0;               // i
  ld.param.u32 %r4, [iters];
loop:
  and.b32 %r5, %r2, 1;
  setp.eq.u32 %p0, %r5, 0;
  @%p0 bra even;
  mad.lo.u32 %r1, %r2, 3, %r1;
  bra next;
even:
  add.u32 %r1, %r1, 1;
next:
  mov.u32 %r6, 1103515245;
  mad.lo.u32 %r2, %r2, %r6, %r3;
  add.u32 %r3, %r3, 1;
  setp.lt.u32 %p1, %r3, %r4;
  @%p1 bra loop;
  shl.u32 %r7, %r0, 2;
  cvt.u64.u32 %rd0, %r7;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.u32 [%rd1], %r1;
  ret;
}
"#;
    let reference = |tid: u32, iters: u32| -> u32 {
        let (mut acc, mut x) = (0u32, tid);
        for i in 0..iters {
            if x & 1 == 1 {
                acc = x.wrapping_mul(3).wrapping_add(acc);
            } else {
                acc = acc.wrapping_add(1);
            }
            x = x.wrapping_mul(1103515245).wrapping_add(i);
        }
        acc
    };
    for config in [ExecConfig::baseline(), ExecConfig::dynamic(4), ExecConfig::static_tie(4)] {
        let dev = device(src);
        let po = dev.malloc(64 * 4).unwrap();
        dev.launch(
            "weighted_count",
            [1, 1, 1],
            [64, 1, 1],
            &[ParamValue::Ptr(po), ParamValue::U32(20)],
            &config,
        )
        .unwrap();
        let got = dev.copy_u32_dtoh(po, 64).unwrap();
        for (i, &v) in got.iter().enumerate() {
            assert_eq!(v, reference(i as u32, 20), "thread {i}, config {config:?}");
        }
    }
}

#[test]
fn multiple_kernels_share_one_module() {
    let src = r#"
.kernel write_one (.param .u64 out) {
  .reg .u32 %r<3>;
  .reg .u64 %rd<3>;
entry:
  mov.u32 %r0, %tid.x;
  shl.u32 %r1, %r0, 2;
  cvt.u64.u32 %rd0, %r1;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  mov.u32 %r2, 1;
  st.global.u32 [%rd1], %r2;
  ret;
}
.kernel double_it (.param .u64 out) {
  .reg .u32 %r<3>;
  .reg .u64 %rd<3>;
entry:
  mov.u32 %r0, %tid.x;
  shl.u32 %r1, %r0, 2;
  cvt.u64.u32 %rd0, %r1;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r2, [%rd1];
  shl.u32 %r2, %r2, 1;
  st.global.u32 [%rd1], %r2;
  ret;
}
"#;
    let dev = device(src);
    let po = dev.malloc(16 * 4).unwrap();
    let cfg = ExecConfig::dynamic(4);
    dev.launch("write_one", [1, 1, 1], [16, 1, 1], &[ParamValue::Ptr(po)], &cfg).unwrap();
    for _ in 0..3 {
        dev.launch("double_it", [1, 1, 1], [16, 1, 1], &[ParamValue::Ptr(po)], &cfg).unwrap();
    }
    let got = dev.copy_u32_dtoh(po, 16).unwrap();
    assert!(got.iter().all(|&v| v == 8), "{got:?}");
    // The cache compiled each kernel's specializations exactly once.
    let stats = dev.cache_stats();
    assert!(stats.hits > 0);
}
