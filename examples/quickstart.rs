//! Quickstart: register a kernel, allocate device memory, launch over a
//! grid of CTAs, and read the result back.
//!
//! Run with `cargo run --example quickstart`.

use dpvk::core::{Device, ExecConfig, ParamValue};
use dpvk::vm::MachineModel;

const SAXPY: &str = r#"
.kernel saxpy (.param .u64 xs, .param .u64 ys, .param .f32 a, .param .u32 n) {
  .reg .u32 %r<4>;
  .reg .u64 %rd<4>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [xs];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.f32 %f0, [%rd1];
  ld.param.u64 %rd2, [ys];
  add.u64 %rd2, %rd2, %rd0;
  ld.global.f32 %f1, [%rd2];
  ld.param.f32 %f2, [a];
  fma.rn.f32 %f1, %f0, %f2, %f1;
  st.global.f32 [%rd2], %f1;
done:
  ret;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A device models a Sandybridge-class CPU with 4-wide SSE units.
    let dev = Device::new(MachineModel::sandybridge_sse(), 16 << 20);
    dev.register_source(SAXPY)?;

    let n = 1000usize;
    let xs = dev.alloc(n * 4)?;
    let ys = dev.alloc(n * 4)?;
    dev.copy_f32_htod(xs.ptr(), &(0..n).map(|i| i as f32).collect::<Vec<_>>())?;
    dev.copy_f32_htod(ys.ptr(), &vec![1.0f32; n])?;

    // Launch under dynamic warp formation with max warp width 4: the
    // translation cache JITs scalar + vectorized specializations lazily.
    let stats = dev.launch(
        "saxpy",
        [(n as u32).div_ceil(128), 1, 1],
        [128, 1, 1],
        &[
            ParamValue::Ptr(xs.ptr()),
            ParamValue::Ptr(ys.ptr()),
            ParamValue::F32(2.0),
            ParamValue::U32(n as u32),
        ],
        &ExecConfig::dynamic(4),
    )?;

    let out = dev.copy_f32_dtoh(ys.ptr(), n)?;
    assert!(out.iter().enumerate().all(|(i, &v)| v == 2.0 * i as f32 + 1.0));

    println!("saxpy over {n} elements: OK");
    println!("{}", stats.exec);
    println!("{}", dev.cache_stats());
    dpvk::trace::write_if_enabled()?;
    Ok(())
}
