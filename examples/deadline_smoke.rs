//! Deadline smoke test: launch a kernel that never terminates and prove
//! the execution manager kills it within the wall-clock budget.
//!
//! Exits 0 only if the launch failed with a deadline fault (with full
//! provenance) in bounded time — CI runs this under an external
//! `timeout` so a broken kill path fails loudly instead of hanging.
//!
//! Run with `cargo run --example deadline_smoke`.

use std::time::{Duration, Instant};

use dpvk::core::{Device, Engine, ExecConfig, ParamValue};
use dpvk::vm::MachineModel;

/// The only block branches to itself: without a deadline this kernel
/// spins until the instruction watchdog (2^32 instructions) trips. The
/// loop body is a bare terminator, so the kill depends on the engines
/// polling the deadline on block retirement, not just per instruction.
const SPIN: &str = r#"
.kernel spin (.param .u32 n) {
  .reg .u32 %r<1>;
entry:
  bra entry;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 20);
    dev.register_source(SPIN)?;

    let budget = Duration::from_millis(300);
    for engine in [Engine::Bytecode, Engine::Tree] {
        let start = Instant::now();
        let result = dev.launch_with_deadline(
            "spin",
            [4, 1, 1],
            [16, 1, 1],
            &[ParamValue::U32(0)],
            &ExecConfig::dynamic(4).with_workers(2).with_engine(engine),
            budget,
        );
        let elapsed = start.elapsed();

        match result {
            Err(e) if e.is_deadline() => {
                println!(
                    "[{}] runaway kernel killed after {elapsed:?} (budget {budget:?}): {e}",
                    engine.label()
                );
                if elapsed > budget * 2 {
                    return Err(format!(
                        "[{}] kill took {elapsed:?}, over 2x the {budget:?} budget",
                        engine.label()
                    )
                    .into());
                }
            }
            Err(e) => return Err(format!("expected a deadline fault, got: {e}").into()),
            Ok(_) => return Err("the spin kernel cannot terminate; launch must not succeed".into()),
        }
    }
    Ok(())
}
