//! Deadline smoke test: launch a kernel that never terminates and prove
//! the execution manager kills it within the wall-clock budget.
//!
//! Exits 0 only if the launch failed with a deadline fault (with full
//! provenance) in bounded time — CI runs this under an external
//! `timeout` so a broken kill path fails loudly instead of hanging.
//!
//! Run with `cargo run --example deadline_smoke`.

use std::time::{Duration, Instant};

use dpvk::core::{Device, ExecConfig, ParamValue};
use dpvk::vm::MachineModel;

/// The only block branches to itself: without a deadline this kernel
/// spins until the instruction watchdog (2^32 instructions) trips.
const SPIN: &str = r#"
.kernel spin (.param .u32 n) {
  .reg .u32 %r<1>;
entry:
  bra entry;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = Device::new(MachineModel::sandybridge_sse(), 1 << 20);
    dev.register_source(SPIN)?;

    let budget = Duration::from_millis(300);
    let start = Instant::now();
    let result = dev.launch_with_deadline(
        "spin",
        [4, 1, 1],
        [16, 1, 1],
        &[ParamValue::U32(0)],
        &ExecConfig::dynamic(4).with_workers(2),
        budget,
    );
    let elapsed = start.elapsed();

    match result {
        Err(e) if e.is_deadline() => {
            println!("runaway kernel killed after {elapsed:?} (budget {budget:?}): {e}");
            if elapsed > budget * 2 {
                return Err(format!("kill took {elapsed:?}, over 2x the {budget:?} budget").into());
            }
            Ok(())
        }
        Err(e) => Err(format!("expected a deadline fault, got: {e}").into()),
        Ok(_) => Err("the spin kernel cannot terminate; launch must not succeed".into()),
    }
}
