//! Run the Black–Scholes workload from the benchmark suite and compare
//! the execution policies — the paper's Figure 6 for one application.
//!
//! Run with `cargo run --release --example blackscholes`.

use dpvk::core::ExecConfig;
use dpvk::workloads::{workload, WorkloadExt};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bs = workload("blackscholes").expect("suite includes blackscholes");
    println!("workload: {} (stands for {})", bs.name(), bs.stands_for());

    let scalar = bs.run_checked(&ExecConfig::baseline().with_workers(1))?.stats;
    let vec2 = bs.run_checked(&ExecConfig::dynamic(2).with_workers(1))?.stats;
    let vec4 = bs.run_checked(&ExecConfig::dynamic(4).with_workers(1))?.stats;

    let base = scalar.exec.total_cycles() as f64;
    println!("\npolicy              cycles      speedup");
    println!("----------------------------------------");
    for (label, s) in [("scalar baseline", &scalar), ("dynamic w2", &vec2), ("dynamic w4", &vec4)] {
        let c = s.exec.total_cycles();
        println!("{label:<18}  {c:>9}  {:>6.2}x", base / c as f64);
    }
    println!("\nevery run validates the option prices against the host reference.");
    Ok(())
}
