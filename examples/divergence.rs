//! Yield-on-diverge in action: a kernel whose threads take different
//! paths, executed under the three warp-formation policies, with the
//! divergence statistics the execution manager collects.
//!
//! Run with `cargo run --example divergence`; set `DPVK_TRACE=1` to also
//! write a structured trace report to `target/dpvk-trace.json`.

use dpvk::core::{Device, ExecConfig, ParamValue};
use dpvk::vm::MachineModel;

/// Odd threads do extra expensive work; even threads take the short path.
const DIVERGE: &str = r#"
.kernel collatz_steps (.param .u64 seeds, .param .u64 out, .param .u32 n) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<4>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  shl.u32 %r2, %r0, 2;
  cvt.u64.u32 %rd0, %r2;
  ld.param.u64 %rd1, [seeds];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.u32 %r3, [%rd1];    // x
  mov.u32 %r4, 0;               // steps
loop:
  setp.le.u32 %p1, %r3, 1;
  @%p1 bra store;
  and.b32 %r5, %r3, 1;
  setp.eq.u32 %p2, %r5, 0;
  @%p2 bra even;
  mad.lo.u32 %r3, %r3, 3, 1;    // x = 3x + 1 (divergent path)
  bra next;
even:
  shr.u32 %r3, %r3, 1;          // x = x / 2
next:
  add.u32 %r4, %r4, 1;
  bra loop;
store:
  ld.param.u64 %rd2, [out];
  add.u64 %rd2, %rd2, %rd0;
  st.global.u32 [%rd2], %r4;
done:
  ret;
}
"#;

fn collatz_steps(mut x: u32) -> u32 {
    let mut steps = 0;
    while x > 1 {
        x = if x.is_multiple_of(2) { x / 2 } else { 3 * x + 1 };
        steps += 1;
    }
    steps
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 256usize;
    let seeds: Vec<u32> = (0..n as u32).map(|i| i * 7 + 1).collect();
    let expected: Vec<u32> = seeds.iter().map(|&s| collatz_steps(s)).collect();

    for (label, config) in [
        ("scalar baseline     ", ExecConfig::baseline().with_workers(1)),
        ("dynamic formation w4", ExecConfig::dynamic(4).with_workers(1)),
        ("static formation w4 ", ExecConfig::static_tie(4).with_workers(1)),
    ] {
        let dev = Device::new(MachineModel::sandybridge_sse(), 4 << 20);
        dev.register_source(DIVERGE)?;
        let ps = dev.alloc(n * 4)?;
        let po = dev.alloc(n * 4)?;
        dev.copy_u32_htod(ps.ptr(), &seeds)?;
        let stats = dev.launch(
            "collatz_steps",
            [(n as u32).div_ceil(64), 1, 1],
            [64, 1, 1],
            &[ParamValue::Ptr(ps.ptr()), ParamValue::Ptr(po.ptr()), ParamValue::U32(n as u32)],
            &config,
        )?;
        let got = dev.copy_u32_dtoh(po.ptr(), n)?;
        assert_eq!(got, expected, "{label} computed wrong step counts");
        let e = &stats.exec;
        println!(
            "{label}  cycles {:>9}  warp entries {:>6}  avg warp {:>4.2}  \
             EM {:>4.1}%  yields {:>4.1}%",
            e.total_cycles(),
            e.warp_entries,
            e.average_warp_size(),
            100.0 * e.manager_fraction(),
            100.0 * e.yield_fraction(),
        );
    }
    println!("\nCollatz trip counts are uncorrelated across threads, so dynamic");
    println!("warp formation pays heavy yield traffic — the paper's MersenneTwister");
    println!("phenomenon. Static formation recovers by running stragglers scalar.");
    dpvk::trace::write_if_enabled()?;
    Ok(())
}
