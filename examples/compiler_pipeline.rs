//! Walk the dynamic compilation pipeline by hand: parse → translate →
//! specialize, printing the IR after each stage — useful for seeing what
//! vectorization and yield-on-diverge actually emit.
//!
//! Run with `cargo run --example compiler_pipeline`.

use dpvk::core::{specialize, translate, SpecializeOptions};
use dpvk::ir;
use dpvk::ptx;

const KERNEL: &str = r#"
.kernel clamp_scale (.param .u64 data, .param .f32 hi, .param .u32 n) {
  .reg .u32 %r<4>;
  .reg .u64 %rd<4>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  ld.param.u32 %r1, [n];
  setp.ge.u32 %p0, %r0, %r1;
  @%p0 bra done;
  cvt.u64.u32 %rd0, %r0;
  shl.u64 %rd0, %rd0, 2;
  ld.param.u64 %rd1, [data];
  add.u64 %rd1, %rd1, %rd0;
  ld.global.f32 %f0, [%rd1];
  ld.param.f32 %f1, [hi];
  setp.gt.f32 %p1, %f0, %f1;
  @%p1 bra clamp;
  mul.f32 %f0, %f0, 2.0;
  bra write;
clamp:
  mov.f32 %f0, %f1;
write:
  st.global.f32 [%rd1], %f0;
done:
  ret;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stage 1: parse and validate the PTX-like source.
    let kernel = ptx::parse_kernel(KERNEL)?;
    println!("=== PTX-like source (round-tripped through the printer) ===\n");
    println!("{}", ptx::print_kernel(&kernel));

    // Stage 2: translate to canonical scalar IR.
    let tk = translate(&kernel)?;
    println!("=== canonical scalar IR ===\n");
    println!("{}", ir::print_function(&tk.scalar));
    println!(
        "entry points: {} | spill slots: {} | local bytes/thread: {}\n",
        tk.entry_points.len(),
        tk.spill_slots.len(),
        tk.local_bytes
    );

    // Stage 3: vectorize for a warp of 4 with divergence handling.
    let spec = specialize(&tk, &SpecializeOptions::dynamic(4))?;
    println!("=== width-4 specialization (scheduler + handlers + body) ===\n");
    println!("{}", ir::print_function(&spec.function));
    println!(
        "instructions: {} before opt, {} after ({} simplifications)",
        spec.pre_opt_instructions,
        spec.post_opt_instructions,
        spec.opt_stats.total_simplifications()
    );
    Ok(())
}
