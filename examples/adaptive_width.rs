//! The adaptive width policy end-to-end through the environment knobs:
//! launch one divergent workload repeatedly at a deliberately narrow
//! width and watch `DPVK_ADAPT=on` steer it to a better one.
//!
//! Run with:
//!
//! ```console
//! $ DPVK_ADAPT=on DPVK_ADAPT_THRESHOLD=2 DPVK_ADAPT_WIDTHS=2,4,8 \
//!     cargo run --release --example adaptive_width
//! ```
//!
//! Without `DPVK_ADAPT` the same binary shows the static behavior (the
//! policy observes nothing and the width never moves). With
//! `DPVK_TRACE=1` the re-specialization events, per-width occupancy and
//! the committed width land in `target/dpvk-trace.json` — this is the
//! CI `adapt-smoke` artifact.

use dpvk::core::{Device, ExecConfig, ParamValue};
use dpvk::vm::MachineModel;

/// Data-dependent trip counts: threads drain at different times, so
/// narrow widths pay heavy yield traffic and the policy has a real
/// gradient to climb.
const KERNEL: &str = r#"
.kernel mixwork (.param .u64 out) {
  .reg .u32 %r<8>;
  .reg .u64 %rd<3>;
  .reg .pred %p<2>;
entry:
  mov.u32 %r0, %tid.x;
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %r0;
  and.b32 %r2, %r0, 15;
  add.u32 %r2, %r2, 4;
  mov.u32 %r1, %r0;
loop:
  mul.lo.u32 %r1, %r1, 2654435761;
  xor.b32 %r1, %r1, %r0;
  sub.u32 %r2, %r2, 1;
  setp.gt.u32 %p0, %r2, 0;
  @%p0 bra loop;
  shl.u32 %r3, %r0, 2;
  cvt.u64.u32 %rd0, %r3;
  ld.param.u64 %rd1, [out];
  add.u64 %rd1, %rd1, %rd0;
  st.global.u32 [%rd1], %r1;
  ret;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let adapting = std::env::var("DPVK_ADAPT").is_ok_and(|v| v.eq_ignore_ascii_case("on"));
    let n = 256usize;
    let dev = Device::new(MachineModel::sandybridge_sse(), 4 << 20);
    dev.register_source(KERNEL)?;
    let out = dev.malloc(n * 4)?;

    // Start deliberately narrow; `ExecConfig::dynamic` inherits the
    // DPVK_ADAPT* environment, so the policy may steer away from it.
    let config = ExecConfig::dynamic(2).with_workers(1);
    let launches = 48usize;
    let mut reference: Option<Vec<u32>> = None;
    for i in 1..=launches {
        dev.launch(
            "mixwork",
            [(n as u32).div_ceil(64), 1, 1],
            [64, 1, 1],
            &[ParamValue::Ptr(out)],
            &config,
        )?;
        let got = dev.copy_u32_dtoh(out, n)?;
        match &reference {
            Some(r) => assert_eq!(&got, r, "launch {i}: width adaptation changed the output"),
            None => reference = Some(got),
        }
        let snap = dev.width_policy("mixwork");
        if i % 8 == 0 || snap.chosen_width.is_some() {
            let w = |o: Option<u32>| o.map_or("-".to_string(), |v| format!("w{v}"));
            println!(
                "launch {i:>3}: active {} chosen {} respecs {}",
                w(snap.active_width),
                w(snap.chosen_width),
                snap.respec_events
            );
        }
        if snap.chosen_width.is_some() {
            break;
        }
        // Let queued background respecializations land between launches.
        dev.synchronize();
    }

    let snap = dev.width_policy("mixwork");
    if adapting {
        // CI gate: under DPVK_ADAPT=on the policy must have explored and
        // committed within the launch budget.
        assert!(
            snap.chosen_width.is_some(),
            "DPVK_ADAPT=on but no width committed after {launches} launches: {snap:?}"
        );
        assert!(snap.respec_events > 0, "committed without any background respecialization");
        println!(
            "\nconverged: w{} after {} launches, {} respecialization(s)",
            snap.chosen_width.unwrap(),
            snap.launches,
            snap.respec_events
        );
    } else {
        assert_eq!(snap.chosen_width, None, "width moved without DPVK_ADAPT=on: {snap:?}");
        println!("\nDPVK_ADAPT not set: width stayed put over {launches} launches");
        println!("re-run with DPVK_ADAPT=on DPVK_ADAPT_THRESHOLD=2 to watch it move");
    }
    dpvk::trace::write_if_enabled()?;
    Ok(())
}
